// Engine edge cases and reporting: mixed waves, fallback mapping when the
// space is empty, capacity exhaustion, the traffic report, and staging of
// multiple sequential waves through one space.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"

#include "support/apps.hpp"

namespace cods {
namespace {

using testing::make_app;


class EngineEdgeTest : public ::testing::Test {
 protected:
  EngineEdgeTest()
      : cluster_(ClusterSpec{.num_nodes = 4, .cores_per_node = 4}),
        server_(cluster_, metrics_, Box{{0, 0}, {15, 15}}) {}

  Cluster cluster_;
  Metrics metrics_;
  WorkflowServer server_;
};

TEST_F(EngineEdgeTest, MixedWaveWithMultiAppBundleRejectedUnderDataCentric) {
  server_.register_app(make_app(1, {8, 8}, {2, 2}),
                       make_pattern_producer({{"a"}, 1, false, 1}));
  server_.register_app(make_app(2, {8, 8}, {2, 2}),
                       make_pattern_consumer({{"a"}, 1, false, 1,
                                              nullptr, nullptr}));
  server_.register_app(make_app(3, {8, 8}, {2, 1}),
                       make_pattern_producer({{"b"}, 1, true, 1}));
  DagSpec dag;
  for (i32 a : {1, 2, 3}) dag.add_app(a);
  dag.add_bundle({1, 2});  // wave 1 contains this bundle AND singleton 3
  WorkflowOptions options;
  options.strategy = MappingStrategy::kDataCentric;
  EXPECT_THROW(server_.run(dag, options), Error);
}

TEST_F(EngineEdgeTest, MixedWaveFineUnderRoundRobin) {
  auto bad = std::make_shared<std::atomic<u64>>(0);
  server_.register_app(make_app(1, {8, 8}, {2, 2}),
                       make_pattern_producer({{"a"}, 1, false, 1}));
  server_.register_app(make_app(2, {8, 8}, {2, 2}),
                       make_pattern_consumer({{"a"}, 1, false, 1, bad,
                                              nullptr}));
  server_.register_app(make_app(3, {8, 8}, {2, 1}),
                       make_pattern_producer({{"b"}, 1, true, 1}));
  DagSpec dag;
  for (i32 a : {1, 2, 3}) dag.add_app(a);
  dag.add_bundle({1, 2});
  WorkflowOptions options;
  options.strategy = MappingStrategy::kRoundRobin;
  server_.run(dag, options);
  EXPECT_EQ(bad->load(), 0u);
}

TEST_F(EngineEdgeTest, ConsumerWithoutDataFallsBackGracefully) {
  // consumes_var set but nothing stored: the app still runs (fallback
  // placement) — it produces rather than consumes.
  server_.register_app(make_app(1, {8, 8}, {2, 2}),
                       make_pattern_producer({{"x"}, 1, true, 1}),
                       /*consumes_var=*/"ghost_var");
  DagSpec dag;
  dag.add_app(1);
  WorkflowOptions options;
  options.strategy = MappingStrategy::kDataCentric;
  server_.run(dag, options);
  EXPECT_EQ(server_.placement(1).size(), 4u);
  EXPECT_FALSE(server_.wave_reports()[0].used_client_mapping);
}

TEST_F(EngineEdgeTest, WaveLargerThanMachineRejected) {
  server_.register_app(make_app(1, {16, 16}, {8, 4}),  // 32 tasks, 16 cores
                       make_pattern_producer({{"x"}, 1, true, 1}));
  DagSpec dag;
  dag.add_app(1);
  EXPECT_THROW(server_.run(dag), Error);
}

TEST_F(EngineEdgeTest, TrafficReportListsApps) {
  auto bad = std::make_shared<std::atomic<u64>>(0);
  server_.register_app(make_app(1, {8, 8}, {2, 2}),
                       make_pattern_producer({{"v"}, 1, true, 1}));
  server_.register_app(
      make_app(2, {8, 8}, {2, 2}),
      make_pattern_consumer({{"v"}, 1, true, 1, bad, nullptr}), "v");
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_dependency(1, 2);
  server_.run(dag);
  const std::string report = server_.traffic_report();
  EXPECT_NE(report.find("app1"), std::string::npos);
  EXPECT_NE(report.find("app2"), std::string::npos);
  EXPECT_NE(report.find("inter-app"), std::string::npos);
}

TEST_F(EngineEdgeTest, ThreeWaveChainReusesSpace) {
  // 1 -> 2 -> 3: wave 2 consumes "a" and produces "b"; wave 3 consumes "b".
  auto bad = std::make_shared<std::atomic<u64>>(0);
  server_.register_app(make_app(1, {8, 8}, {2, 2}),
                       make_pattern_producer({{"a"}, 1, true, 5}));
  server_.register_app(
      make_app(2, {8, 8}, {2, 2}),
      [bad](AppCtx& ctx) {
        for (const Box& box : ctx.my_boxes()) {
          std::vector<std::byte> buf(box_bytes(box, 8));
          ctx.cods->get_seq("a", 0, box, buf, 8);
          bad->fetch_add(verify_pattern(buf, box, 8, 5));
          // Re-publish under a new name for the third stage.
          ctx.cods->put_seq("b", 0, box, buf, 8);
        }
      },
      "a");
  server_.register_app(
      make_app(3, {8, 8}, {4, 1}),
      make_pattern_consumer({{"b"}, 1, true, 5, bad, nullptr}), "b");
  DagSpec dag;
  for (i32 a : {1, 2, 3}) dag.add_app(a);
  dag.add_dependency(1, 2);
  dag.add_dependency(2, 3);
  WorkflowOptions options;
  options.strategy = MappingStrategy::kDataCentric;
  server_.run(dag, options);
  EXPECT_EQ(bad->load(), 0u);
  EXPECT_EQ(server_.wave_reports().size(), 3u);
  EXPECT_TRUE(server_.wave_reports()[1].used_client_mapping);
  EXPECT_TRUE(server_.wave_reports()[2].used_client_mapping);
}

TEST_F(EngineEdgeTest, AppDomainMustFitSpaceDomain) {
  // Space domain is 16x16; a 32-wide app or a 3-D app must be rejected at
  // registration (before the DHT's curve could be overrun).
  EXPECT_THROW(server_.register_app(make_app(1, {32, 16}, {2, 2}),
                                    make_pattern_producer({})),
               Error);
  AppSpec threed;
  threed.app_id = 2;
  threed.dec = blocked({8, 8, 8}, {2, 2, 1});
  EXPECT_THROW(server_.register_app(threed, make_pattern_producer({})),
               Error);
  // A smaller sub-domain app is fine.
  EXPECT_NO_THROW(server_.register_app(make_app(3, {8, 8}, {2, 2}),
                                       make_pattern_producer({})));
}

TEST_F(EngineEdgeTest, RerunRequiresRetiringOldVersions) {
  auto bad = std::make_shared<std::atomic<u64>>(0);
  server_.register_app(make_app(1, {8, 8}, {2, 2}),
                       make_pattern_producer({{"v"}, 1, true, 1}));
  server_.register_app(
      make_app(2, {8, 8}, {2, 2}),
      make_pattern_consumer({{"v"}, 1, true, 1, bad, nullptr}), "v");
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_dependency(1, 2);
  server_.run(dag);
  // Re-running the same campaign against the same versions collides with
  // the still-cached objects...
  EXPECT_THROW(server_.run(dag), Error);
  // ...but after retiring the old iteration the workflow runs again.
  server_.space().retire("v", 0);
  EXPECT_NO_THROW(server_.run(dag));
  EXPECT_EQ(bad->load(), 0u);
}

TEST_F(EngineEdgeTest, SingleTaskWorkflow) {
  bool ran = false;
  AppSpec solo = make_app(1, {4, 4}, {1, 1});
  server_.register_app(solo, [&ran](AppCtx& ctx) {
    EXPECT_EQ(ctx.comm.size(), 1);
    EXPECT_EQ(ctx.task.rank, 0);
    ran = true;
  });
  DagSpec dag;
  dag.add_app(1);
  server_.run(dag);
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace cods
