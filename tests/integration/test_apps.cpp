// Integration tests for the synthetic component applications running under
// the full workflow engine: histogram analysis, the downsampling pipeline,
// and multi-stage workflows combining them.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/synthetic.hpp"

#include "support/apps.hpp"

namespace cods {
namespace {

using testing::make_app;


class AppsTest : public ::testing::Test {
 protected:
  AppsTest()
      : cluster_(ClusterSpec{.num_nodes = 4, .cores_per_node = 4}),
        server_(cluster_, metrics_, Box{{0, 0}, {15, 15}}) {}

  Cluster cluster_;
  Metrics metrics_;
  WorkflowServer server_;
};

TEST_F(AppsTest, HistogramCountsEveryCellOnce) {
  const i32 iters = 2;
  auto histograms =
      std::make_shared<std::vector<std::vector<i64>>>(iters);
  server_.register_app(make_app(1, {16, 16}, {2, 2}),
                       make_stencil_simulation({"temp", iters, 0.1}));
  server_.register_app(
      make_app(2, {16, 16}, {2, 1}),
      make_histogram_analysis({"temp", iters, 0.0, 1.0, 8, histograms}));
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_bundle({1, 2});
  server_.run(dag);
  for (i32 i = 0; i < iters; ++i) {
    const auto& h = (*histograms)[static_cast<size_t>(i)];
    ASSERT_EQ(h.size(), 8u);
    const i64 total = std::accumulate(h.begin(), h.end(), i64{0});
    EXPECT_EQ(total, 16 * 16) << "iteration " << i;
    for (i64 c : h) EXPECT_GE(c, 0);
  }
}

TEST_F(AppsTest, HistogramMatchesMomentsRange) {
  const i32 iters = 1;
  auto histograms =
      std::make_shared<std::vector<std::vector<i64>>>(iters);
  auto moments = std::make_shared<std::vector<Moments>>(iters);
  server_.register_app(make_app(1, {16, 16}, {2, 2}),
                       make_stencil_simulation({"t", iters, 0.1}));
  server_.register_app(
      make_app(2, {16, 16}, {2, 1}),
      make_histogram_analysis({"t", iters, 0.0, 1.0, 4, histograms}));
  server_.register_app(make_app(3, {16, 16}, {1, 2}),
                       make_moments_analysis({"t", iters, moments}));
  DagSpec dag;
  for (i32 a : {1, 2, 3}) dag.add_app(a);
  dag.add_bundle({1, 2, 3});
  server_.run(dag);
  // The moment bounds and the histogram agree: no counts in buckets wholly
  // above the max or below the min.
  const Moments& m = (*moments)[0];
  const auto& h = (*histograms)[0];
  for (size_t b = 0; b < h.size(); ++b) {
    const double bucket_lo = 0.25 * static_cast<double>(b);
    if (bucket_lo > m.max && b > 0) {
      EXPECT_EQ(h[b], 0) << "bucket " << b << " above max " << m.max;
    }
  }
}

TEST_F(AppsTest, DownsamplerProducesCoarseField) {
  const i32 iters = 2;
  server_.register_app(make_app(1, {16, 16}, {2, 2}),
                       make_stencil_simulation({"fine", iters, 0.1}));
  server_.register_app(
      make_app(2, {16, 16}, {2, 2}),
      make_downsampler({"fine", "coarse", iters, /*factor=*/2}));
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_bundle({1, 2});
  server_.run(dag);

  // The coarse field exists for every iteration and covers the 8x8 domain.
  for (i32 iter = 0; iter < iters; ++iter) {
    const auto entries = server_.space().catalog("coarse", iter);
    u64 cells = 0;
    for (const DataLocation& loc : entries) cells += loc.box.volume();
    EXPECT_EQ(cells, 64u) << "iteration " << iter;
  }

  // Averaging preserves the global mean: read both fields and compare.
  CodsClient reader(server_.space(), Endpoint{0, CoreLoc{0, 0}}, 9);
  const Box fine_box{{0, 0}, {15, 15}};
  const Box coarse_box{{0, 0}, {7, 7}};
  std::vector<std::byte> coarse(box_bytes(coarse_box, 8));
  reader.get_seq("coarse", 0, coarse_box, coarse, 8);
  const auto* cv = reinterpret_cast<const double*>(coarse.data());
  double coarse_sum = 0;
  for (u64 i = 0; i < coarse_box.volume(); ++i) coarse_sum += cv[i];
  // Fine field is transient (put_cont) — recompute its sum analytically is
  // not possible here, but the coarse mean must be within the field's
  // value range (0, 1).
  EXPECT_GT(coarse_sum / 64.0, 0.0);
  EXPECT_LT(coarse_sum / 64.0, 1.0);
}

TEST_F(AppsTest, DownsamplerRejectsMisalignedFactor) {
  server_.register_app(make_app(1, {16, 16}, {2, 2}),
                       make_stencil_simulation({"f", 1, 0.1}));
  server_.register_app(make_app(2, {16, 16}, {2, 2}),
                       make_downsampler({"f", "c", 1, /*factor=*/3}));
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_bundle({1, 2});
  EXPECT_THROW(server_.run(dag), Error);  // 8 % 3 != 0
}

TEST_F(AppsTest, ThreeStagePipelineSimToCoarseToConsumer) {
  // Stage 1 bundle: sim + downsampler (concurrent). Stage 2: a consumer of
  // the coarse field launched afterwards (sequential coupling).
  const i32 iters = 1;
  server_.register_app(make_app(1, {16, 16}, {2, 2}),
                       make_stencil_simulation({"fine", iters, 0.1}));
  server_.register_app(make_app(2, {16, 16}, {2, 2}),
                       make_downsampler({"fine", "coarse", iters, 2}));
  // The consumer reads the coarse 8x8 domain with its own decomposition.
  AppSpec viz;
  viz.app_id = 3;
  viz.name = "viz";
  viz.dec = blocked({8, 8}, {2, 2});
  auto sum = std::make_shared<std::atomic<u64>>(0);
  server_.register_app(
      viz,
      [sum](AppCtx& ctx) {
        for (const Box& box : ctx.my_boxes()) {
          std::vector<std::byte> out(box_bytes(box, 8));
          ctx.cods->get_seq("coarse", 0, box, out, 8);
          sum->fetch_add(box.volume());
        }
      },
      /*consumes_var=*/"coarse");
  DagSpec dag;
  for (i32 a : {1, 2, 3}) dag.add_app(a);
  dag.add_bundle({1, 2});
  dag.add_dependency(2, 3);
  server_.run(dag);
  EXPECT_EQ(sum->load(), 64u);
}

}  // namespace
}  // namespace cods
