file(REMOVE_RECURSE
  "CMakeFiles/insitu_viz.dir/insitu_viz.cpp.o"
  "CMakeFiles/insitu_viz.dir/insitu_viz.cpp.o.d"
  "insitu_viz"
  "insitu_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
