# Empty dependencies file for cods_geometry.
# This may be replaced when dependencies are built.
