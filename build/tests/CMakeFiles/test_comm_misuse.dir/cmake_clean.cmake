file(REMOVE_RECURSE
  "CMakeFiles/test_comm_misuse.dir/runtime/test_comm_misuse.cpp.o"
  "CMakeFiles/test_comm_misuse.dir/runtime/test_comm_misuse.cpp.o.d"
  "test_comm_misuse"
  "test_comm_misuse.pdb"
  "test_comm_misuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_misuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
