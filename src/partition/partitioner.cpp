#include "partition/partitioner.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/rng.hpp"

namespace cods {

namespace {

i64 ceil_div(i64 a, i64 b) { return (a + b - 1) / b; }

struct CoarseLevel {
  Graph graph;
  std::vector<i32> fine_to_coarse;
};

/// Heavy-edge matching + contraction. `merge_cap` bounds the combined
/// weight of a matched pair so coarse vertices stay placeable. Returns
/// nullopt when the graph no longer shrinks meaningfully.
std::optional<CoarseLevel> coarsen_once(const Graph& g, i64 merge_cap,
                                        Rng& rng) {
  std::vector<i32> order(static_cast<size_t>(g.nvtx));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<i32> match(static_cast<size_t>(g.nvtx), -1);
  i32 ncoarse = 0;
  std::vector<i32> fine_to_coarse(static_cast<size_t>(g.nvtx), -1);
  for (i32 v : order) {
    if (match[static_cast<size_t>(v)] != -1) continue;
    i32 best = -1;
    i64 best_w = -1;
    for (i64 e = g.xadj[static_cast<size_t>(v)];
         e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
      const i32 u = g.adjncy[static_cast<size_t>(e)];
      if (match[static_cast<size_t>(u)] != -1) continue;
      if (g.vwgt[static_cast<size_t>(v)] + g.vwgt[static_cast<size_t>(u)] >
          merge_cap)
        continue;
      if (g.adjwgt[static_cast<size_t>(e)] > best_w) {
        best_w = g.adjwgt[static_cast<size_t>(e)];
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<size_t>(v)] = best;
      match[static_cast<size_t>(best)] = v;
      fine_to_coarse[static_cast<size_t>(v)] = ncoarse;
      fine_to_coarse[static_cast<size_t>(best)] = ncoarse;
      ++ncoarse;
    } else {
      match[static_cast<size_t>(v)] = v;
      fine_to_coarse[static_cast<size_t>(v)] = ncoarse;
      ++ncoarse;
    }
  }
  if (ncoarse >= g.nvtx * 9 / 10) return std::nullopt;  // stalled

  std::vector<i64> cvwgt(static_cast<size_t>(ncoarse), 0);
  for (i32 v = 0; v < g.nvtx; ++v) {
    cvwgt[static_cast<size_t>(fine_to_coarse[static_cast<size_t>(v)])] +=
        g.vwgt[static_cast<size_t>(v)];
  }
  std::vector<std::tuple<i32, i32, i64>> cedges;
  cedges.reserve(g.adjncy.size() / 2);
  for (i32 v = 0; v < g.nvtx; ++v) {
    const i32 cv = fine_to_coarse[static_cast<size_t>(v)];
    for (i64 e = g.xadj[static_cast<size_t>(v)];
         e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
      const i32 cu =
          fine_to_coarse[static_cast<size_t>(g.adjncy[static_cast<size_t>(e)])];
      if (cv < cu) {  // each undirected edge once
        cedges.emplace_back(cv, cu, g.adjwgt[static_cast<size_t>(e)]);
      }
    }
  }
  CoarseLevel level;
  level.graph = Graph::from_edges(ncoarse, cedges, std::move(cvwgt));
  level.fine_to_coarse = std::move(fine_to_coarse);
  return level;
}

std::vector<i64> part_weights(const Graph& g, std::span<const i32> part,
                              i32 nparts) {
  std::vector<i64> w(static_cast<size_t>(nparts), 0);
  for (i32 v = 0; v < g.nvtx; ++v) {
    w[static_cast<size_t>(part[static_cast<size_t>(v)])] +=
        g.vwgt[static_cast<size_t>(v)];
  }
  return w;
}

/// Greedy graph growing on the coarsest graph, capacity-aware per part.
std::vector<i32> initial_partition(const Graph& g, i32 nparts,
                                   std::span<const i64> caps, Rng& rng) {
  std::vector<i32> part(static_cast<size_t>(g.nvtx), -1);
  if (nparts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }
  std::vector<i64> weight(static_cast<size_t>(nparts), 0);
  const i64 total = g.total_vertex_weight();
  i64 total_cap = 0;
  for (i64 c : caps) total_cap += c;
  i32 assigned = 0;

  std::vector<i32> perm(static_cast<size_t>(g.nvtx));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  size_t seed_cursor = 0;
  auto next_seed = [&]() -> i32 {
    while (seed_cursor < perm.size() &&
           part[static_cast<size_t>(perm[seed_cursor])] != -1) {
      ++seed_cursor;
    }
    return seed_cursor < perm.size() ? perm[seed_cursor] : -1;
  };

  for (i32 p = 0; p < nparts && assigned < g.nvtx; ++p) {
    const i64 cap = caps[static_cast<size_t>(p)];
    // Grow each region towards its proportional share of the total weight.
    const i64 target = std::min(cap, ceil_div(total * cap, total_cap));
    std::vector<i64> connectivity(static_cast<size_t>(g.nvtx), 0);
    std::vector<i32> frontier;
    auto add_to_region = [&](i32 v) {
      part[static_cast<size_t>(v)] = p;
      weight[static_cast<size_t>(p)] += g.vwgt[static_cast<size_t>(v)];
      ++assigned;
      for (i64 e = g.xadj[static_cast<size_t>(v)];
           e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
        const i32 u = g.adjncy[static_cast<size_t>(e)];
        if (part[static_cast<size_t>(u)] != -1) continue;
        if (connectivity[static_cast<size_t>(u)] == 0) frontier.push_back(u);
        connectivity[static_cast<size_t>(u)] +=
            g.adjwgt[static_cast<size_t>(e)];
      }
    };
    const i32 seed = next_seed();
    if (seed < 0) break;
    add_to_region(seed);
    while (weight[static_cast<size_t>(p)] < target && assigned < g.nvtx) {
      // Pick frontier vertex with max connectivity that fits.
      i32 best = -1;
      i64 best_conn = -1;
      size_t best_idx = 0;
      for (size_t i = 0; i < frontier.size(); ++i) {
        const i32 u = frontier[i];
        if (part[static_cast<size_t>(u)] != -1) continue;  // stale entry
        if (weight[static_cast<size_t>(p)] + g.vwgt[static_cast<size_t>(u)] >
            cap)
          continue;
        if (connectivity[static_cast<size_t>(u)] > best_conn) {
          best_conn = connectivity[static_cast<size_t>(u)];
          best = u;
          best_idx = i;
        }
      }
      if (best < 0) {
        // Disconnected or everything too heavy: jump to a fresh seed.
        const i32 s = next_seed();
        if (s < 0 ||
            weight[static_cast<size_t>(p)] + g.vwgt[static_cast<size_t>(s)] >
                cap)
          break;
        add_to_region(s);
        continue;
      }
      frontier[best_idx] = frontier.back();
      frontier.pop_back();
      add_to_region(best);
    }
  }
  // Leftovers: relatively-lightest part with room; if coarse-vertex
  // granularity leaves no part with room, overfill the relatively-lightest
  // part — the fine-level repair pass restores the hard bound.
  auto fill_ratio = [&](i32 p) {
    return static_cast<double>(weight[static_cast<size_t>(p)]) /
           static_cast<double>(std::max<i64>(1, caps[static_cast<size_t>(p)]));
  };
  for (i32 v = 0; v < g.nvtx; ++v) {
    if (part[static_cast<size_t>(v)] != -1) continue;
    i32 best = -1;
    i32 lightest = 0;
    for (i32 p = 0; p < nparts; ++p) {
      if (fill_ratio(p) < fill_ratio(lightest)) lightest = p;
      if (weight[static_cast<size_t>(p)] + g.vwgt[static_cast<size_t>(v)] >
          caps[static_cast<size_t>(p)])
        continue;
      if (best < 0 || fill_ratio(p) < fill_ratio(best)) best = p;
    }
    if (best < 0) best = lightest;
    part[static_cast<size_t>(v)] = best;
    weight[static_cast<size_t>(best)] += g.vwgt[static_cast<size_t>(v)];
  }
  return part;
}

/// Per-vertex connectivity to each neighbouring part: a small vector of
/// (part, summed edge weight), ascending by part, entries > 0 only.
using PartConn = std::vector<std::pair<i32, i64>>;

void conn_add(PartConn& row, i32 p, i64 w) {
  auto it = std::lower_bound(
      row.begin(), row.end(), p,
      [](const std::pair<i32, i64>& a, i32 b) { return a.first < b; });
  if (it != row.end() && it->first == p) {
    it->second += w;
    if (it->second == 0) row.erase(it);
  } else {
    row.insert(it, {p, w});
  }
}

i64 conn_to(const PartConn& row, i32 p) {
  auto it = std::lower_bound(
      row.begin(), row.end(), p,
      [](const std::pair<i32, i64>& a, i32 b) { return a.first < b; });
  return (it != row.end() && it->first == p) ? it->second : 0;
}

/// Greedy boundary refinement (FM-style single-vertex moves) with
/// incrementally maintained gains: each vertex's part-connectivity row is
/// built once, O(E), and a move only touches the mover's neighbours'
/// rows. Interior vertices — one row entry, their own part — are
/// rejected in O(1) per pass instead of re-scanning their edges, which
/// is most of the graph once the partition is locally good.
void refine(const Graph& g, std::vector<i32>& part, i32 nparts,
            std::span<const i64> caps, int passes, Rng& rng) {
  if (nparts <= 1 || g.nvtx == 0) return;
  std::vector<i64> weight = part_weights(g, part, nparts);
  std::vector<PartConn> conn(static_cast<size_t>(g.nvtx));
  for (i32 v = 0; v < g.nvtx; ++v) {
    for (i64 e = g.xadj[static_cast<size_t>(v)];
         e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
      conn_add(conn[static_cast<size_t>(v)],
               part[static_cast<size_t>(g.adjncy[static_cast<size_t>(e)])],
               g.adjwgt[static_cast<size_t>(e)]);
    }
  }
  std::vector<i32> order(static_cast<size_t>(g.nvtx));
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < passes; ++pass) {
    std::shuffle(order.begin(), order.end(), rng);
    bool moved = false;
    for (i32 v : order) {
      const i32 from = part[static_cast<size_t>(v)];
      const PartConn& row = conn[static_cast<size_t>(v)];
      if (row.empty()) continue;  // isolated vertex: no gain anywhere
      if (row.size() == 1 && row.front().first == from) continue;  // interior
      const i64 conn_from = conn_to(row, from);
      i32 best = from;
      i64 best_gain = 0;
      for (const auto& [p, w] : row) {
        if (p == from) continue;
        if (weight[static_cast<size_t>(p)] + g.vwgt[static_cast<size_t>(v)] >
            caps[static_cast<size_t>(p)])
          continue;
        const i64 gain = w - conn_from;
        const bool better =
            gain > best_gain ||
            (gain == best_gain && gain > 0 &&
             weight[static_cast<size_t>(p)] <
                 weight[static_cast<size_t>(best)]);
        if (better) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != from) {
        part[static_cast<size_t>(v)] = best;
        weight[static_cast<size_t>(from)] -= g.vwgt[static_cast<size_t>(v)];
        weight[static_cast<size_t>(best)] += g.vwgt[static_cast<size_t>(v)];
        for (i64 e = g.xadj[static_cast<size_t>(v)];
             e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
          PartConn& u_row =
              conn[static_cast<size_t>(g.adjncy[static_cast<size_t>(e)])];
          conn_add(u_row, from, -g.adjwgt[static_cast<size_t>(e)]);
          conn_add(u_row, best, g.adjwgt[static_cast<size_t>(e)]);
        }
        moved = true;
      }
    }
    if (!moved) break;
  }
}

/// Moves vertices out of overfull parts until every capacity holds.
void repair_capacity(const Graph& g, std::vector<i32>& part, i32 nparts,
                     std::span<const i64> caps) {
  std::vector<i64> weight = part_weights(g, part, nparts);
  for (;;) {
    i32 over = -1;
    for (i32 p = 0; p < nparts; ++p) {
      if (weight[static_cast<size_t>(p)] > caps[static_cast<size_t>(p)]) {
        over = p;
        break;
      }
    }
    if (over < 0) return;
    // Cheapest vertex (by cut increase) in the overfull part that fits a
    // destination part.
    i32 best_v = -1;
    i32 best_p = -1;
    i64 best_cost = 0;
    for (i32 v = 0; v < g.nvtx; ++v) {
      if (part[static_cast<size_t>(v)] != over) continue;
      for (i32 p = 0; p < nparts; ++p) {
        if (p == over) continue;
        if (weight[static_cast<size_t>(p)] + g.vwgt[static_cast<size_t>(v)] >
            caps[static_cast<size_t>(p)])
          continue;
        i64 cost = 0;
        for (i64 e = g.xadj[static_cast<size_t>(v)];
             e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
          const i32 q =
              part[static_cast<size_t>(g.adjncy[static_cast<size_t>(e)])];
          if (q == over) cost += g.adjwgt[static_cast<size_t>(e)];
          if (q == p) cost -= g.adjwgt[static_cast<size_t>(e)];
        }
        if (best_v < 0 || cost < best_cost) {
          best_v = v;
          best_p = p;
          best_cost = cost;
        }
      }
    }
    CODS_CHECK(best_v >= 0, "capacity repair failed (infeasible instance)");
    weight[static_cast<size_t>(over)] -= g.vwgt[static_cast<size_t>(best_v)];
    weight[static_cast<size_t>(best_p)] += g.vwgt[static_cast<size_t>(best_v)];
    part[static_cast<size_t>(best_v)] = best_p;
  }
}

/// The full multilevel pipeline for one (sub)problem.
std::vector<i32> multilevel_partition(const Graph& g, i32 nparts,
                                      std::span<const i64> caps,
                                      const PartitionOptions& options,
                                      Rng& rng) {
  const i64 merge_cap =
      *std::max_element(caps.begin(), caps.end());
  std::vector<CoarseLevel> levels;
  const Graph* current = &g;
  while (current->nvtx > std::max<i32>(options.coarsen_target, nparts * 2)) {
    auto level = coarsen_once(*current, merge_cap, rng);
    if (!level) break;
    levels.push_back(std::move(*level));
    current = &levels.back().graph;
  }

  std::vector<i32> part = initial_partition(*current, nparts, caps, rng);
  refine(*current, part, nparts, caps, options.refine_passes, rng);

  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Graph& fine =
        (std::next(it) == levels.rend()) ? g : std::next(it)->graph;
    std::vector<i32> fine_part(static_cast<size_t>(fine.nvtx));
    for (i32 v = 0; v < fine.nvtx; ++v) {
      fine_part[static_cast<size_t>(v)] =
          part[static_cast<size_t>(it->fine_to_coarse[static_cast<size_t>(v)])];
    }
    part = std::move(fine_part);
    refine(fine, part, nparts, caps, options.refine_passes, rng);
  }

  repair_capacity(g, part, nparts, caps);
  return part;
}

/// Extracts the sub-graph induced by the vertices with part[v] == side.
/// Returns the sub-graph and the local->global vertex mapping.
std::pair<Graph, std::vector<i32>> induced_subgraph(
    const Graph& g, std::span<const i32> part, i32 side) {
  std::vector<i32> local(static_cast<size_t>(g.nvtx), -1);
  std::vector<i32> global;
  for (i32 v = 0; v < g.nvtx; ++v) {
    if (part[static_cast<size_t>(v)] == side) {
      local[static_cast<size_t>(v)] = static_cast<i32>(global.size());
      global.push_back(v);
    }
  }
  std::vector<std::tuple<i32, i32, i64>> edges;
  std::vector<i64> vwgt;
  vwgt.reserve(global.size());
  for (i32 lv = 0; lv < static_cast<i32>(global.size()); ++lv) {
    const i32 v = global[static_cast<size_t>(lv)];
    vwgt.push_back(g.vwgt[static_cast<size_t>(v)]);
    for (i64 e = g.xadj[static_cast<size_t>(v)];
         e < g.xadj[static_cast<size_t>(v) + 1]; ++e) {
      const i32 u = g.adjncy[static_cast<size_t>(e)];
      const i32 lu = local[static_cast<size_t>(u)];
      if (lu > lv) {
        edges.emplace_back(lv, lu, g.adjwgt[static_cast<size_t>(e)]);
      }
    }
  }
  return {Graph::from_edges(static_cast<i32>(global.size()), edges,
                            std::move(vwgt)),
          std::move(global)};
}

void recursive_bisect(const Graph& g, std::span<const i32> global_ids,
                      i32 nparts, std::span<const i64> caps, i32 first_part,
                      const PartitionOptions& options, Rng& rng,
                      std::vector<i32>& out) {
  if (nparts == 1) {
    for (i32 v = 0; v < g.nvtx; ++v) {
      out[static_cast<size_t>(global_ids[static_cast<size_t>(v)])] =
          first_part;
    }
    return;
  }
  const i32 k1 = nparts / 2;
  const i32 k2 = nparts - k1;
  i64 cap_left = 0;
  i64 cap_right = 0;
  for (i32 p = 0; p < k1; ++p) cap_left += caps[static_cast<size_t>(p)];
  for (i32 p = k1; p < nparts; ++p) cap_right += caps[static_cast<size_t>(p)];
  const std::array<i64, 2> side_caps = {cap_left, cap_right};
  const std::vector<i32> bisection =
      multilevel_partition(g, 2, side_caps, options, rng);
  for (i32 side = 0; side < 2; ++side) {
    auto [sub, sub_global] = induced_subgraph(g, bisection, side);
    // Map the sub-graph's local ids back to the original vertex ids.
    for (i32& v : sub_global) {
      v = global_ids[static_cast<size_t>(v)];
    }
    if (sub.nvtx == 0) continue;
    recursive_bisect(sub, sub_global, side == 0 ? k1 : k2,
                     caps.subspan(side == 0 ? 0 : static_cast<size_t>(k1),
                                  static_cast<size_t>(side == 0 ? k1 : k2)),
                     first_part + (side == 0 ? 0 : k1), options, rng, out);
  }
}

}  // namespace

PartitionResult kway_partition(const Graph& g, i32 nparts,
                               PartitionOptions options) {
  CODS_REQUIRE(nparts >= 1, "nparts must be positive");
  g.validate();
  const i64 total = g.total_vertex_weight();
  std::vector<i64> caps;
  if (!options.part_capacities.empty()) {
    CODS_REQUIRE(static_cast<i32>(options.part_capacities.size()) == nparts,
                 "part_capacities size must equal nparts");
    caps = options.part_capacities;
  } else {
    const i64 cap = options.max_part_weight > 0 ? options.max_part_weight
                                                : ceil_div(total, nparts);
    caps.assign(static_cast<size_t>(nparts), cap);
  }
  i64 total_cap = 0;
  i64 max_cap = 0;
  for (i64 c : caps) {
    CODS_REQUIRE(c >= 1, "part capacity must be positive");
    total_cap += c;
    max_cap = std::max(max_cap, c);
  }
  CODS_REQUIRE(total <= total_cap,
               "infeasible: total vertex weight exceeds total capacity");
  for (i64 w : g.vwgt) {
    CODS_REQUIRE(w <= max_cap, "a single vertex exceeds every capacity");
  }

  Rng rng(options.seed);
  std::vector<i32> part;
  if (options.scheme == PartitionScheme::kRecursiveBisection && nparts > 1) {
    part.assign(static_cast<size_t>(g.nvtx), 0);
    std::vector<i32> identity(static_cast<size_t>(g.nvtx));
    std::iota(identity.begin(), identity.end(), 0);
    recursive_bisect(g, identity, nparts, caps, 0, options, rng, part);
    repair_capacity(g, part, nparts, caps);
  } else {
    part = multilevel_partition(g, nparts, caps, options, rng);
  }

  PartitionResult result;
  result.part = std::move(part);
  result.edge_cut = g.edge_cut(result.part);
  const auto weights = part_weights(g, result.part, nparts);
  result.max_weight = weights.empty()
                          ? 0
                          : *std::max_element(weights.begin(), weights.end());
  return result;
}

bool partition_valid(const Graph& g, std::span<const i32> part, i32 nparts,
                     i64 max_part_weight) {
  if (static_cast<i32>(part.size()) != g.nvtx) return false;
  std::vector<i64> weight(static_cast<size_t>(nparts), 0);
  for (i32 v = 0; v < g.nvtx; ++v) {
    const i32 p = part[static_cast<size_t>(v)];
    if (p < 0 || p >= nparts) return false;
    weight[static_cast<size_t>(p)] += g.vwgt[static_cast<size_t>(v)];
  }
  for (i64 w : weight) {
    if (max_part_weight > 0 && w > max_part_weight) return false;
  }
  return true;
}

}  // namespace cods
