# Empty dependencies file for test_field_view.
# This may be replaced when dependencies are built.
