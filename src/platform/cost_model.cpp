#include "platform/cost_model.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cods {

namespace fabric {

CostParams seastar2() { return CostParams{}; }

CostParams gemini() {
  CostParams params;
  params.link_bw = 2.9e10;   // ~29 GB/s per link
  params.nic_bw = 6.0e9;     // ~6 GB/s injection
  params.hop_latency = 1e-6;
  params.net_latency = 1.5e-6;
  params.shm_bw = 8.0e9;
  return params;
}

CostParams modern_hpc() {
  CostParams params;
  params.link_bw = 5.0e10;
  params.nic_bw = 1.2e10;    // ~100 Gbps
  params.hop_latency = 2e-7;
  params.net_latency = 1e-6;
  params.shm_bw = 2.0e10;    // DDR5-era streaming
  params.shm_latency = 2e-7;
  return params;
}

}  // namespace fabric

double CostModel::flow_time(const Flow& flow) const {
  if (flow.bytes == 0) return 0.0;
  const double bytes = static_cast<double>(flow.bytes);
  if (flow.src.node == flow.dst.node) {
    return params_.shm_latency + bytes / params_.shm_bw;
  }
  const i32 hops = cluster_->hops(flow.src.node, flow.dst.node);
  const double wire_bw = std::min(params_.link_bw, params_.nic_bw);
  return params_.net_latency + hops * params_.hop_latency + bytes / wire_bw;
}

double CostModel::batch_time(const std::vector<Flow>& flows) const {
  return batch_time_with_background(flows, {});
}

double CostModel::batch_time_with_background(
    const std::vector<Flow>& primary, const std::vector<Flow>& background) const {
  if (primary.empty()) return 0.0;
  // Accumulate loads over primary + background, but remember which
  // resources the primary flows touch: only those bound the result.
  //
  // This runs once per pull batch on the simulate hot path (10^5+ calls
  // per enacted wave), so the scratch containers are thread-local —
  // cleared, never freed — and each flow's route is walked exactly once:
  // a dimension-order route visits each link at most once, so folding
  // the primary-membership insert and the load sum into one walk leaves
  // every per-link sum accumulating in the same flow order as two
  // separate passes would. route_links().size() is the hop count by
  // construction (shortest steps per dimension).
  static thread_local std::unordered_set<u64> primary_links;
  static thread_local std::unordered_set<i32> primary_nics;
  static thread_local std::unordered_set<i32> primary_shm;
  static thread_local std::unordered_map<u64, double> link_load;  // links
  static thread_local std::unordered_map<i32, double> nic_load;   // per-node
  static thread_local std::unordered_map<i32, double> shm_load;   // mem bus
  primary_links.clear();
  primary_nics.clear();
  primary_shm.clear();
  link_load.clear();
  nic_load.clear();
  shm_load.clear();
  i32 max_hops = 0;
  for (const Flow& f : primary) {
    if (f.bytes == 0) continue;
    const double bytes = static_cast<double>(f.bytes);
    if (f.src.node == f.dst.node) {
      primary_shm.insert(f.src.node);
      shm_load[f.src.node] += bytes;
      continue;
    }
    primary_nics.insert(f.src.node);
    primary_nics.insert(f.dst.node);
    nic_load[f.src.node] += bytes;
    nic_load[f.dst.node] += bytes;
    const auto route = cluster_->route_links(f.src.node, f.dst.node);
    max_hops = std::max(max_hops, static_cast<i32>(route.size()));
    for (u64 link : route) {
      primary_links.insert(link);
      link_load[link] += bytes;
    }
  }
  for (const Flow& f : background) {
    if (f.bytes == 0) continue;
    const double bytes = static_cast<double>(f.bytes);
    if (f.src.node == f.dst.node) {
      shm_load[f.src.node] += bytes;
      continue;
    }
    nic_load[f.src.node] += bytes;
    nic_load[f.dst.node] += bytes;
    for (u64 link : cluster_->route_links(f.src.node, f.dst.node)) {
      link_load[link] += bytes;
    }
  }
  double bottleneck = 0.0;
  for (const auto& [link, load] : link_load) {
    if (!primary_links.contains(link)) continue;
    bottleneck = std::max(bottleneck, load / params_.link_bw);
  }
  for (const auto& [node, load] : nic_load) {
    if (!primary_nics.contains(node)) continue;
    bottleneck = std::max(bottleneck, load / params_.nic_bw);
  }
  for (const auto& [node, load] : shm_load) {
    if (!primary_shm.contains(node)) continue;
    bottleneck = std::max(bottleneck, load / params_.shm_bw);
  }
  double latency = 0.0;
  if (!primary_nics.empty()) {
    latency = params_.net_latency + max_hops * params_.hop_latency;
  } else if (!primary_shm.empty()) {
    latency = params_.shm_latency;
  }
  return bottleneck + latency;
}

double CostModel::rpc_time(const CoreLoc& src, const CoreLoc& dst,
                           u64 count) const {
  if (count == 0) return 0.0;
  Flow f{src, dst, static_cast<u64>(params_.rpc_bytes)};
  return static_cast<double>(count) * 2.0 * flow_time(f);  // round trip
}

}  // namespace cods
