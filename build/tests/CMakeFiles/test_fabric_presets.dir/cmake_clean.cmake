file(REMOVE_RECURSE
  "CMakeFiles/test_fabric_presets.dir/platform/test_fabric_presets.cpp.o"
  "CMakeFiles/test_fabric_presets.dir/platform/test_fabric_presets.cpp.o.d"
  "test_fabric_presets"
  "test_fabric_presets.pdb"
  "test_fabric_presets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
