# Empty dependencies file for cods_partition.
# This may be replaced when dependencies are built.
