// Per-task modelled-time accumulator (health layer). Each executing rank
// carries a thread-local clock that the transport layers advance by every
// operation's modelled time; the engine reads the totals after a wave to
// find stragglers (tasks whose modelled time exceeds the wave's deadline)
// and the runtime installs the deadline so subroutines can poll it.
//
// Header-only on purpose: HybridDart and the vmpi runtime advance the
// clock but must not link against cods_health (which links against them);
// an inline thread_local keeps the dependency arrow one-way.
#pragma once

#include "common/types.hpp"

namespace cods {

class TaskClock {
 public:
  /// The full thread-local clock state. ExecMode::kSimulate multiplexes
  /// many rank fibers over one OS thread, so the discrete-event engine
  /// swaps the state in and out around every fiber switch with
  /// exchange(); each fiber then sees a private clock exactly as if it
  /// ran on its own thread.
  struct Snapshot {
    bool active = false;
    double elapsed = 0.0;
    double deadline = 0.0;
  };

  /// Replaces the thread's clock state with `next` and returns the
  /// previous state (restore it when the fiber switches back out).
  static Snapshot exchange(const Snapshot& next) {
    State& s = state();
    const Snapshot previous{s.active, s.elapsed, s.deadline};
    s.active = next.active;
    s.elapsed = next.elapsed;
    s.deadline = next.deadline;
    return previous;
  }

  /// Installs a fresh clock on this thread with an optional deadline in
  /// modelled seconds (0 = none). The runtime calls this per rank body.
  static void install(double deadline = 0.0) {
    State& s = state();
    s.active = true;
    s.elapsed = 0.0;
    s.deadline = deadline;
  }

  /// Detaches the clock; subsequent advance() calls become no-ops.
  static void uninstall() { state().active = false; }

  static bool installed() { return state().active; }

  /// Adds `seconds` of modelled time to the current task (no-op when no
  /// clock is installed — e.g. server-side sweeps outside any task).
  static void advance(double seconds) {
    State& s = state();
    if (s.active) s.elapsed += seconds;
  }

  /// Modelled seconds this task has accumulated so far.
  static double elapsed() { return state().elapsed; }

  /// The installed deadline (0 = none).
  static double deadline() { return state().deadline; }

  /// True once the task has spent more modelled time than its deadline.
  static bool over_deadline() {
    const State& s = state();
    return s.active && s.deadline > 0.0 && s.elapsed > s.deadline;
  }

 private:
  struct State {
    bool active = false;
    double elapsed = 0.0;
    double deadline = 0.0;
  };
  static State& state() {
    static thread_local State s;
    return s;
  }
};

}  // namespace cods
