# Empty compiler generated dependencies file for cods_runtime.
# This may be replaced when dependencies are built.
