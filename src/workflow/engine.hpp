// The workflow management server and task-execution engine (paper §III-A,
// Fig. 4): registers applications ("statically compiled and linked MPI
// subroutines"), parses/validates the DAG, maps every scheduling wave's
// tasks onto processor cores with the selected strategy, then runs the
// wave: execution clients are colored by application id, split into
// per-application communicators and dispatched into the registered
// subroutine (§IV-C).
#pragma once

#include "core/cods.hpp"
#include "health/monitor.hpp"
#include "runtime/runtime.hpp"
#include "trace/trace.hpp"
#include "workflow/mapping.hpp"

namespace cods {

/// Context handed to an application subroutine, one per computation task.
struct AppCtx {
  const AppSpec* spec = nullptr;
  TaskId task;              ///< app id + rank within the app
  Comm comm;                ///< per-application communicator
  CodsClient* cods = nullptr;
  const Cluster* cluster = nullptr;

  /// The task's owned region(s) of the coupled domain.
  std::vector<Box> my_boxes() const {
    return spec->dec.owned_boxes(task.rank);
  }
};

using AppFn = std::function<void(AppCtx&)>;

struct WorkflowOptions {
  MappingStrategy strategy = MappingStrategy::kDataCentric;
  u64 seed = 1;
  CostParams cost;
  /// Optional fault injector (docs/FAULT_MODEL.md). When set, transfers
  /// and sends consult it, waves are checkpointed for recovery, and node
  /// deaths trigger failover + re-execution per `retry`.
  FaultInjector* fault = nullptr;
  RetryPolicy retry;
  /// Small-transfer batching threshold forwarded to the transport
  /// (HybridDart::set_batch_threshold, docs/PERF.md). 0 disables. Byte
  /// accounting and modelled times are invariant under this knob.
  u64 dart_batch_threshold = 0;
  /// Optional structured-event tracing (docs/TRACING.md). When set, the
  /// engine opens one span per wave and per task and every instrumented
  /// layer (dart, runtime, cods client, lock service, redistribution)
  /// records into the recorder. Near-zero cost when null.
  TraceRecorder* trace = nullptr;
  /// Optional per-transfer journal covering the whole run: attached to
  /// the transport and to every wave's runtime so dart transfers and
  /// point-to-point sends land in one reconcilable log.
  TransferLog* transfer_log = nullptr;
  /// Rank dispatch for every wave (docs/PERF.md "Enactment scaling").
  /// kPooled runs ranks on a bounded work-stealing pool; kThreadPerRank
  /// restores the legacy one-thread-per-rank dispatch; kSimulate enacts
  /// ranks as discrete events on one thread (docs/SIMULATION.md). All
  /// observable outputs (traces, ledgers, failure handling) are
  /// identical — the cross-mode equivalence suites pin this. Applies to
  /// every enactment the engine runs, including one-rank speculative
  /// straggler copies.
  ExecMode exec_mode = ExecMode::kPooled;
  /// Worker cap for kPooled; <= 0 selects the hardware-concurrency
  /// default. Also sizes the mapping-stage DHT lookup parallel-for.
  i32 exec_pool_size = 0;
  /// Per-fiber stack bytes for kSimulate; <= 0 selects
  /// SimEngine::kDefaultStackBytes. A memory/depth trade-off knob for
  /// 100k-rank enactments.
  i64 sim_stack_bytes = 0;
  /// Ready-structure for kSimulate's event loop. kCalendar (default) is
  /// the O(1)-amortized calendar queue; kBinaryHeap retains the original
  /// heap as an equivalence oracle. Pop order — and therefore every
  /// observable output — is identical between the two.
  SimReadyQueue sim_ready_queue = SimReadyQueue::kCalendar;
  /// Health subsystem (docs/FAULT_MODEL.md "Failure detection"): when
  /// `fault` is set the engine learns of node deaths exclusively through
  /// a heartbeat-driven phi-accrual detector configured here — it never
  /// reads the injector's crash schedule. Also carries the straggler
  /// deadline multiplier, the speculation opt-in and the CodsSpace byte
  /// watermarks.
  HealthConfig health;
};

/// Record of how one scheduling wave was executed.
struct WaveReport {
  std::vector<i32> apps;
  MappingStrategy strategy = MappingStrategy::kRoundRobin;
  bool used_server_mapping = false;
  bool used_client_mapping = false;
  i64 comm_graph_cut_bytes = -1;
  // --- failure recovery (only non-default when fault injection is on) ---
  i32 attempts = 1;                ///< execution attempts (1 = no failure)
  std::vector<i32> failed_nodes;   ///< nodes declared dead during this wave
  i32 failed_tasks = 0;            ///< task executions that raised an error
  i32 reexecuted_tasks = 0;        ///< tasks re-run after failover
  u64 recovered_bytes = 0;         ///< checkpoint bytes restored to survivors
  // --- health subsystem (docs/FAULT_MODEL.md "Failure detection") ---
  i32 detection_rounds = 0;        ///< heartbeat rounds swept this wave
  double detection_latency = 0.0;  ///< worst first-miss -> declared-dead gap
  i32 straggler_tasks = 0;         ///< tasks over the wave deadline
  i32 speculated_tasks = 0;        ///< stragglers speculatively re-executed
  i32 speculation_wins = 0;  ///< speculative copies beating the original
};

class WorkflowServer {
 public:
  WorkflowServer(const Cluster& cluster, Metrics& metrics, const Box& domain,
                 CodsConfig config = {});

  /// Registers an application: its spec, the subroutine to run, and —
  /// for sequentially coupled consumers — the variable/version whose
  /// stored locations drive client-side data-centric mapping.
  void register_app(AppSpec spec, AppFn fn, std::string consumes_var = "",
                    i32 consumes_version = 0);

  /// Executes the whole workflow. Blocking; throws on the first task
  /// failure or an invalid DAG.
  void run(const DagSpec& dag, WorkflowOptions options = {});

  CodsSpace& space() { return space_; }
  const Cluster& cluster() const { return *cluster_; }

  /// Placement the engine chose for an app in its wave.
  const Placement& placement(i32 app_id) const;

  const std::vector<WaveReport>& wave_reports() const { return reports_; }

  /// Aggregate simulate-mode accounting for the most recent run():
  /// event counters (switches, notifies, timeouts, ...) sum across the
  /// waves the run enacted; high-water marks (peak_blocked, stacks,
  /// arena_bytes, peak_rss_bytes) take the per-wave max. All zeros
  /// under ExecMode::kLive.
  const SimStats& last_sim_stats() const { return sim_stats_; }

  /// Human-readable per-application traffic summary of the whole run
  /// (inter/intra bytes split by transport), from the metrics registry.
  std::string traffic_report() const;

 private:
  struct RegisteredApp {
    AppSpec spec;
    AppFn fn;
    std::string consumes_var;
    i32 consumes_version = 0;
  };

  struct TaskFailure {
    TaskId task;
    std::exception_ptr error;
  };

  const RegisteredApp& app(i32 app_id) const;
  Placement map_wave(const std::vector<std::vector<i32>>& wave,
                     const WorkflowOptions& options, WaveReport& report,
                     const std::vector<i32>& allowed_nodes);
  std::vector<NodeBytes> dht_node_bytes(const RegisteredApp& consumer,
                                        const WorkflowOptions& options);
  std::vector<TaskFailure> execute_wave(
      const Placement& placement, const WorkflowOptions& options,
      i32 wave_index, i32 attempt, u64 wave_span_id, double wave_start,
      std::vector<std::pair<TaskId, double>>* task_times = nullptr);
  void mitigate_stragglers(
      const std::vector<std::pair<TaskId, double>>& task_times,
      const Placement& placement, const WorkflowOptions& options,
      const std::vector<i32>& allowed, i32 wave_index, WaveReport& report);
  void record_placements(const std::vector<std::vector<i32>>& wave,
                         const Placement& placement);

  const Cluster* cluster_;
  Metrics* metrics_;
  CodsSpace space_;
  std::map<i32, RegisteredApp> apps_;
  void accumulate_sim_stats(const SimStats& wave);

  std::map<i32, Placement> placements_;
  std::vector<WaveReport> reports_;
  SimStats sim_stats_;
};

}  // namespace cods
