file(REMOVE_RECURSE
  "libcods_geometry.a"
)
