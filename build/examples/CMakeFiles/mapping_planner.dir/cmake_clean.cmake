file(REMOVE_RECURSE
  "CMakeFiles/mapping_planner.dir/mapping_planner.cpp.o"
  "CMakeFiles/mapping_planner.dir/mapping_planner.cpp.o.d"
  "mapping_planner"
  "mapping_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
