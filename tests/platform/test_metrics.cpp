#include <gtest/gtest.h>

#include <thread>

#include "platform/metrics.hpp"

namespace cods {
namespace {

TEST(Metrics, RecordsByAppAndClass) {
  Metrics m;
  m.record(1, TrafficClass::kInterApp, 100, /*via_network=*/true);
  m.record(1, TrafficClass::kInterApp, 50, /*via_network=*/false);
  m.record(1, TrafficClass::kIntraApp, 7, true);
  m.record(2, TrafficClass::kInterApp, 9, true);

  const auto inter1 = m.counters(1, TrafficClass::kInterApp);
  EXPECT_EQ(inter1.net_bytes, 100u);
  EXPECT_EQ(inter1.shm_bytes, 50u);
  EXPECT_EQ(inter1.transfers, 2u);
  EXPECT_EQ(inter1.total(), 150u);

  EXPECT_EQ(m.counters(1, TrafficClass::kIntraApp).net_bytes, 7u);
  EXPECT_EQ(m.counters(2, TrafficClass::kInterApp).net_bytes, 9u);
  EXPECT_EQ(m.counters(3, TrafficClass::kInterApp).total(), 0u);
}

TEST(Metrics, Totals) {
  Metrics m;
  m.record(1, TrafficClass::kInterApp, 10, true);
  m.record(2, TrafficClass::kInterApp, 20, false);
  m.record(1, TrafficClass::kIntraApp, 40, true);
  const auto inter = m.total(TrafficClass::kInterApp);
  EXPECT_EQ(inter.net_bytes, 10u);
  EXPECT_EQ(inter.shm_bytes, 20u);
  EXPECT_EQ(m.total_net_bytes(), 50u);
}

TEST(Metrics, Times) {
  Metrics m;
  m.add_time(1, "retrieve", 0.5);
  m.add_time(1, "retrieve", 0.25);
  m.add_time(1, "insert", 0.1);
  EXPECT_DOUBLE_EQ(m.time(1, "retrieve"), 0.75);
  EXPECT_DOUBLE_EQ(m.time(1, "insert"), 0.1);
  EXPECT_DOUBLE_EQ(m.time(2, "retrieve"), 0.0);
}

TEST(Metrics, Reset) {
  Metrics m;
  m.record(1, TrafficClass::kInterApp, 10, true);
  m.add_time(1, "x", 1.0);
  m.reset();
  EXPECT_EQ(m.total_net_bytes(), 0u);
  EXPECT_DOUBLE_EQ(m.time(1, "x"), 0.0);
}

TEST(Metrics, ThreadSafeAccumulation) {
  Metrics m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) {
        m.record(1, TrafficClass::kInterApp, 1, true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.counters(1, TrafficClass::kInterApp).net_bytes, 8000u);
}

TEST(Metrics, ReportMentionsApps) {
  Metrics m;
  m.record(7, TrafficClass::kInterApp, 2048, true);
  m.add_time(7, "retrieve", 0.001);
  const std::string report = m.report();
  EXPECT_NE(report.find("app 7"), std::string::npos);
  EXPECT_NE(report.find("inter-app"), std::string::npos);
  EXPECT_NE(report.find("2.00 KiB"), std::string::npos);
}

}  // namespace
}  // namespace cods
