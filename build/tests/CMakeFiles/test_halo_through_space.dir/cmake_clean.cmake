file(REMOVE_RECURSE
  "CMakeFiles/test_halo_through_space.dir/integration/test_halo_through_space.cpp.o"
  "CMakeFiles/test_halo_through_space.dir/integration/test_halo_through_space.cpp.o.d"
  "test_halo_through_space"
  "test_halo_through_space.pdb"
  "test_halo_through_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halo_through_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
