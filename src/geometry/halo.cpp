#include "geometry/halo.hpp"

#include <algorithm>

namespace cods {

Decomposition blocked_view(const Decomposition& dec) {
  std::vector<DimSpec> dims;
  dims.reserve(static_cast<size_t>(dec.ndim()));
  for (int d = 0; d < dec.ndim(); ++d) {
    DimSpec ds = dec.dim(d);
    ds.dist = Dist::kBlocked;
    dims.push_back(ds);
  }
  return Decomposition(std::move(dims));
}

std::vector<TransferVolume> halo_volumes(const Decomposition& dec,
                                         int ghost_width) {
  CODS_REQUIRE(ghost_width >= 0, "ghost width must be non-negative");
  for (int d = 0; d < dec.ndim(); ++d) {
    CODS_REQUIRE(dec.dim(d).dist == Dist::kBlocked,
                 "halo exchange requires a blocked decomposition; wrap the "
                 "app's coupling decomposition with blocked_view()");
  }
  std::vector<TransferVolume> out;
  if (ghost_width == 0) return out;
  for (i32 rank = 0; rank < dec.ntasks(); ++rank) {
    const Point g = dec.rank_to_grid(rank);
    // Local extent along each dim for this rank (may be 0 at the ragged
    // edge when the extent does not divide evenly).
    std::array<i64, kMaxDims> local{};
    bool empty = false;
    for (int d = 0; d < dec.ndim(); ++d) {
      local[static_cast<size_t>(d)] =
          dec.owned_count_dim(d, static_cast<i32>(g[d]));
      if (local[static_cast<size_t>(d)] == 0) empty = true;
    }
    if (empty) continue;
    for (int d = 0; d < dec.ndim(); ++d) {
      for (int dir : {-1, +1}) {
        Point ng = g;
        ng[d] += dir;
        if (ng[d] < 0 || ng[d] >= dec.dim(d).nprocs) continue;
        const i64 nbr_extent =
            dec.owned_count_dim(d, static_cast<i32>(ng[d]));
        if (nbr_extent == 0) continue;
        // Cells this rank sends to the neighbour: a slab of up to
        // ghost_width layers times the cross-sectional face area.
        u64 face = 1;
        for (int e = 0; e < dec.ndim(); ++e) {
          if (e != d) face *= static_cast<u64>(local[static_cast<size_t>(e)]);
        }
        const u64 layers = static_cast<u64>(
            std::min<i64>(ghost_width, local[static_cast<size_t>(d)]));
        out.push_back(
            TransferVolume{rank, dec.grid_to_rank(ng), face * layers});
      }
    }
  }
  return out;
}

}  // namespace cods
