file(REMOVE_RECURSE
  "CMakeFiles/test_cods.dir/core/test_cods.cpp.o"
  "CMakeFiles/test_cods.dir/core/test_cods.cpp.o.d"
  "test_cods"
  "test_cods.pdb"
  "test_cods[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
