#include "common/blocking.hpp"

namespace cods::blocking {

namespace {
thread_local Observer* t_observer = nullptr;
thread_local SimHook* t_sim_hook = nullptr;
}  // namespace

Observer* current() { return t_observer; }

Observer* install(Observer* observer) {
  Observer* previous = t_observer;
  t_observer = observer;
  return previous;
}

SimHook* sim_hook() { return t_sim_hook; }

SimHook* install_sim_hook(SimHook* hook) {
  SimHook* previous = t_sim_hook;
  t_sim_hook = hook;
  return previous;
}

}  // namespace cods::blocking
