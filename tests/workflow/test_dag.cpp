#include <gtest/gtest.h>

#include "workflow/dag.hpp"

namespace cods {
namespace {

// The two workflow files from the paper's Listing 1.
constexpr const char* kOnlineProcessing = R"(
# Online Data Processing Workflow
# Simulation code has appid=1
# Bundle is specified by IDs of its applications
APP_ID 1
APP_ID 2

BUNDLE 1 2
)";

constexpr const char* kClimateModeling = R"(
# Climate Modeling Workflow
# Atmosphere model has appid=1
# Land model has appid=2, Sea-ice model has appid=3
APP_ID 1
APP_ID 2
APP_ID 3
PARENT_APPID 1 CHILD_APPID 2
PARENT_APPID 1 CHILD_APPID 3
BUNDLE 1
BUNDLE 2
BUNDLE 3
)";

TEST(Dag, ParsesOnlineProcessingListing) {
  const DagSpec dag = DagSpec::parse(kOnlineProcessing);
  dag.validate();
  EXPECT_EQ(dag.app_ids(), (std::vector<i32>{1, 2}));
  EXPECT_TRUE(dag.edges().empty());
  const auto bundles = dag.bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0], (std::vector<i32>{1, 2}));
}

TEST(Dag, ParsesClimateModelingListing) {
  const DagSpec dag = DagSpec::parse(kClimateModeling);
  dag.validate();
  EXPECT_EQ(dag.app_ids(), (std::vector<i32>{1, 2, 3}));
  ASSERT_EQ(dag.edges().size(), 2u);
  EXPECT_EQ(dag.parents(2), (std::vector<i32>{1}));
  EXPECT_EQ(dag.parents(3), (std::vector<i32>{1}));
  EXPECT_TRUE(dag.parents(1).empty());
}

TEST(Dag, ClimateWavesRunLandAndSeaIceConcurrently) {
  const DagSpec dag = DagSpec::parse(kClimateModeling);
  const auto waves = dag.waves();
  ASSERT_EQ(waves.size(), 2u);
  // Wave 1: atmosphere alone. Wave 2: land and sea-ice together.
  ASSERT_EQ(waves[0].size(), 1u);
  EXPECT_EQ(waves[0][0], (std::vector<i32>{1}));
  ASSERT_EQ(waves[1].size(), 2u);
}

TEST(Dag, OnlineProcessingIsOneWave) {
  const DagSpec dag = DagSpec::parse(kOnlineProcessing);
  const auto waves = dag.waves();
  ASSERT_EQ(waves.size(), 1u);
  ASSERT_EQ(waves[0].size(), 1u);
  EXPECT_EQ(waves[0][0].size(), 2u);
}

TEST(Dag, UnbundledAppsBecomeSingletons) {
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_bundle({1});
  const auto bundles = dag.bundles();
  ASSERT_EQ(bundles.size(), 2u);
  EXPECT_EQ(bundles[1], (std::vector<i32>{2}));
}

TEST(Dag, SerializeRoundTrip) {
  const DagSpec dag = DagSpec::parse(kClimateModeling);
  const DagSpec again = DagSpec::parse(dag.serialize());
  EXPECT_EQ(again.app_ids(), dag.app_ids());
  EXPECT_EQ(again.edges(), dag.edges());
  EXPECT_EQ(again.bundles(), dag.bundles());
}

TEST(Dag, DiamondDependency) {
  DagSpec dag;
  for (i32 app : {1, 2, 3, 4}) dag.add_app(app);
  dag.add_dependency(1, 2);
  dag.add_dependency(1, 3);
  dag.add_dependency(2, 4);
  dag.add_dependency(3, 4);
  dag.validate();
  const auto waves = dag.waves();
  ASSERT_EQ(waves.size(), 3u);
  EXPECT_EQ(waves[0][0], (std::vector<i32>{1}));
  EXPECT_EQ(waves[1].size(), 2u);
  EXPECT_EQ(waves[2][0], (std::vector<i32>{4}));
}

TEST(Dag, CycleDetected) {
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_dependency(1, 2);
  dag.add_dependency(2, 1);
  EXPECT_THROW(dag.validate(), Error);
}

TEST(Dag, BundleMergesDependencies) {
  // A dependency into a bundle delays the whole bundle.
  DagSpec dag;
  for (i32 app : {1, 2, 3}) dag.add_app(app);
  dag.add_dependency(1, 2);
  dag.add_bundle({2, 3});
  const auto waves = dag.waves();
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[1][0], (std::vector<i32>{2, 3}));
}

TEST(Dag, IntraBundleEdgeIgnoredForScheduling) {
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_dependency(1, 2);
  dag.add_bundle({1, 2});
  const auto waves = dag.waves();
  EXPECT_EQ(waves.size(), 1u);
}

TEST(Dag, ValidationErrors) {
  {
    DagSpec dag;
    EXPECT_THROW(dag.validate(), Error);  // empty
  }
  {
    DagSpec dag;
    dag.add_app(1);
    EXPECT_THROW(dag.add_app(1), Error);  // duplicate
  }
  {
    DagSpec dag;
    dag.add_app(1);
    dag.add_dependency(1, 9);
    EXPECT_THROW(dag.validate(), Error);  // unknown child
  }
  {
    DagSpec dag;
    dag.add_app(1);
    dag.add_dependency(1, 1);
    EXPECT_THROW(dag.validate(), Error);  // self edge
  }
  {
    DagSpec dag;
    dag.add_app(1);
    dag.add_app(2);
    dag.add_bundle({1});
    dag.add_bundle({1, 2});
    EXPECT_THROW(dag.validate(), Error);  // app in two bundles
  }
}

TEST(Dag, ParseErrors) {
  EXPECT_THROW(DagSpec::parse("APP_ID"), Error);
  EXPECT_THROW(DagSpec::parse("FROBNICATE 1"), Error);
  EXPECT_THROW(DagSpec::parse("PARENT_APPID 1 CHILD 2"), Error);
  EXPECT_THROW(DagSpec::parse("BUNDLE"), Error);
  EXPECT_THROW(DagSpec::parse("APP_ID 1\nAPP_ID 1"), Error);
}

TEST(Dag, ParseIgnoresCommentsAndBlankLines) {
  const DagSpec dag = DagSpec::parse("\n# hi\nAPP_ID 5 # trailing\n\n");
  EXPECT_EQ(dag.app_ids(), (std::vector<i32>{5}));
}


TEST(Dag, LoadSaveRoundTripThroughDisk) {
  const DagSpec dag = DagSpec::parse(kClimateModeling);
  const std::string path = ::testing::TempDir() + "/workflow.dag";
  dag.save(path);
  const DagSpec loaded = DagSpec::load(path);
  EXPECT_EQ(loaded.app_ids(), dag.app_ids());
  EXPECT_EQ(loaded.edges(), dag.edges());
  EXPECT_EQ(loaded.bundles(), dag.bundles());
}

TEST(Dag, LoadMissingFileThrows) {
  EXPECT_THROW(DagSpec::load("/nonexistent/path/wf.dag"), Error);
}

}  // namespace
}  // namespace cods
