#include <gtest/gtest.h>

#include <sstream>

#include "core/cods.hpp"

namespace cods {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : cluster_(ClusterSpec{.num_nodes = 4, .cores_per_node = 2}),
        space_(cluster_, metrics_, Box{{0, 0}, {15, 15}}) {}

  void put(CodsSpace& space, i32 node, const std::string& var, i32 version,
           const Box& box, u64 seed) {
    CodsClient client(space, Endpoint{node * 2, CoreLoc{node, 0}}, 1);
    std::vector<std::byte> data(box_bytes(box, 8));
    fill_pattern(data, box, 8, seed);
    client.put_seq(var, version, box, data, 8);
  }

  Cluster cluster_;
  Metrics metrics_;
  CodsSpace space_;
};

TEST_F(CheckpointTest, SaveLoadRoundTripPreservesData) {
  put(space_, 0, "t", 0, Box{{0, 0}, {7, 7}}, 5);
  put(space_, 1, "t", 0, Box{{8, 0}, {15, 7}}, 5);
  put(space_, 2, "u", 3, Box{{0, 8}, {15, 15}}, 9);

  std::stringstream stream;
  EXPECT_EQ(space_.save_checkpoint(stream), 3u);

  // Restore into a fresh space on the same cluster.
  Metrics metrics2;
  CodsSpace restored(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(restored.load_checkpoint(stream), 3u);
  EXPECT_EQ(restored.stored_bytes(), space_.stored_bytes());
  EXPECT_EQ(restored.versions("t"), (std::vector<i32>{0}));
  EXPECT_EQ(restored.latest_version("u"), 3);

  // Content still verifies through a normal get.
  CodsClient consumer(restored, Endpoint{6, CoreLoc{3, 0}}, 2);
  const Box window{{2, 2}, {13, 5}};
  std::vector<std::byte> out(box_bytes(window, 8));
  consumer.get_seq("t", 0, window, out, 8);
  EXPECT_EQ(verify_pattern(out, window, 8, 5), 0u);
}

TEST_F(CheckpointTest, FileRoundTrip) {
  put(space_, 0, "v", 1, Box{{0, 0}, {7, 7}}, 3);
  const std::string path = ::testing::TempDir() + "/space.ckp";
  EXPECT_EQ(space_.save_checkpoint(path), 1u);
  Metrics metrics2;
  CodsSpace restored(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(restored.load_checkpoint(path), 1u);
  CodsClient consumer(restored, Endpoint{2, CoreLoc{1, 0}}, 2);
  std::vector<std::byte> out(box_bytes(Box{{0, 0}, {7, 7}}, 8));
  consumer.get_seq("v", 1, Box{{0, 0}, {7, 7}}, out, 8);
  EXPECT_EQ(verify_pattern(out, Box{{0, 0}, {7, 7}}, 8, 3), 0u);
}

TEST_F(CheckpointTest, EmptySpaceRoundTrip) {
  std::stringstream stream;
  EXPECT_EQ(space_.save_checkpoint(stream), 0u);
  Metrics metrics2;
  CodsSpace restored(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(restored.load_checkpoint(stream), 0u);
  EXPECT_TRUE(restored.variables().empty());
}

TEST_F(CheckpointTest, ContStateNotCaptured) {
  CodsClient producer(space_, Endpoint{0, CoreLoc{0, 0}}, 1);
  std::vector<std::byte> data(box_bytes(Box{{0, 0}, {3, 3}}, 8));
  producer.put_cont("stream", 0, Box{{0, 0}, {3, 3}}, data, 8);
  std::stringstream stream;
  EXPECT_EQ(space_.save_checkpoint(stream), 0u);
}

TEST_F(CheckpointTest, BadStreamsRejected) {
  {
    std::stringstream garbage("not a checkpoint at all");
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    EXPECT_THROW(fresh.load_checkpoint(garbage), Error);
  }
  {
    // Truncated stream: valid header, missing body.
    put(space_, 0, "v", 0, Box{{0, 0}, {7, 7}}, 1);
    std::stringstream stream;
    space_.save_checkpoint(stream);
    std::string bytes = stream.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    EXPECT_THROW(fresh.load_checkpoint(truncated), Error);
  }
  EXPECT_THROW(space_.load_checkpoint("/no/such/file.ckp"), Error);
}

TEST_F(CheckpointTest, NodeOutOfRangeRejected) {
  put(space_, 3, "v", 0, Box{{0, 0}, {7, 7}}, 1);
  std::stringstream stream;
  space_.save_checkpoint(stream);
  // Restore into a smaller cluster that lacks node 3.
  Cluster small(ClusterSpec{.num_nodes = 2, .cores_per_node = 2});
  Metrics metrics2;
  CodsSpace fresh(small, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_THROW(fresh.load_checkpoint(stream), Error);
}

}  // namespace
}  // namespace cods
