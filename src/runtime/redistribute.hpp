// The "single MPI meta-application" baseline for the M x N coupling
// problem (paper §I): instead of sharing data through the CoDS space, the
// producer and consumer applications are fused into one communicator and
// exchange the overlap regions with explicit point-to-point messages.
// Provided as a comparison substrate (see bench/ablation_meta_app) and for
// tests that cross-check CoDS transfer volumes against a direct exchange.
//
// Restriction: both decompositions must be blocked (each task owns one
// contiguous box) — the typical layout of the stencil codes this baseline
// historically served.
#pragma once

#include "geometry/redistribution.hpp"
#include "runtime/runtime.hpp"

namespace cods {

struct RedistributeStats {
  u64 bytes_sent = 0;
  u64 bytes_received = 0;
  i32 peers = 0;  ///< distinct remote tasks exchanged with
};

/// Producer side: `data` is row-major over this task's owned box of `src`.
/// Sends every overlap to the consumer world ranks, which are assumed to be
/// laid out as world rank = consumer_rank0 + dst_rank.
RedistributeStats meta_redistribute_send(const Comm& world,
                                         const Decomposition& src,
                                         i32 src_rank,
                                         const Decomposition& dst,
                                         i32 consumer_rank0,
                                         std::span<const std::byte> data,
                                         u64 elem_size, i32 tag = 7000);

/// Consumer side: fills `out` (row-major over this task's owned box of
/// `dst`) from producer world ranks laid out as producer_rank0 + src_rank.
RedistributeStats meta_redistribute_recv(const Comm& world,
                                         const Decomposition& src,
                                         i32 producer_rank0,
                                         const Decomposition& dst,
                                         i32 dst_rank,
                                         std::span<std::byte> out,
                                         u64 elem_size, i32 tag = 7000);

}  // namespace cods
