file(REMOVE_RECURSE
  "CMakeFiles/test_spans_4d.dir/sfc/test_spans_4d.cpp.o"
  "CMakeFiles/test_spans_4d.dir/sfc/test_spans_4d.cpp.o.d"
  "test_spans_4d"
  "test_spans_4d.pdb"
  "test_spans_4d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spans_4d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
