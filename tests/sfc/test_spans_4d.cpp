// Higher-dimensional and granularity sweeps for the box->span machinery
// that routes DHT queries.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sfc/curve.hpp"

namespace cods {
namespace {

class SpanGranularity
    : public ::testing::TestWithParam<std::tuple<CurveKind, int, int>> {};

TEST_P(SpanGranularity, CoarserNeverMoreSpansAlwaysCovers) {
  const auto& [kind, nd, gran] = GetParam();
  const SfcCurve curve(kind, nd, 4);
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    Box q;
    q.lb = Point::zeros(nd);
    q.ub = Point::zeros(nd);
    for (int d = 0; d < nd; ++d) {
      const i64 a = rng.range(0, curve.side() - 1);
      const i64 b = rng.range(0, curve.side() - 1);
      q.lb[d] = std::min(a, b);
      q.ub[d] = std::max(a, b);
    }
    const auto exact = box_spans(curve, q);
    const auto coarse = box_spans(curve, q, gran);
    EXPECT_LE(coarse.size(), exact.size());
    EXPECT_GE(span_cells(coarse), q.volume());
    // Over-coverage only: every exact span is inside some coarse span.
    for (const IndexSpan& s : exact) {
      bool contained = false;
      for (const IndexSpan& c : coarse) {
        if (s.lo >= c.lo && s.hi <= c.hi) contained = true;
      }
      EXPECT_TRUE(contained);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpanGranularity,
    ::testing::Combine(::testing::Values(CurveKind::kHilbert,
                                         CurveKind::kMorton),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3)));

TEST(Spans4D, ExactCoverageInFourDims) {
  const SfcCurve curve(CurveKind::kHilbert, 4, 3);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Box q;
    q.lb = Point::zeros(4);
    q.ub = Point::zeros(4);
    for (int d = 0; d < 4; ++d) {
      const i64 a = rng.range(0, 7);
      const i64 b = rng.range(0, 7);
      q.lb[d] = std::min(a, b);
      q.ub[d] = std::max(a, b);
    }
    const auto spans = box_spans(curve, q);
    EXPECT_EQ(span_cells(spans), q.volume());
    for (const IndexSpan& s : spans) {
      EXPECT_TRUE(q.contains(curve.decode(s.lo)));
      EXPECT_TRUE(q.contains(curve.decode(s.hi)));
    }
  }
}

TEST(Spans4D, HilbertAdjacencyHoldsInFourDims) {
  const SfcCurve curve(CurveKind::kHilbert, 4, 2);
  Point prev = curve.decode(0);
  for (u64 i = 1; i < curve.size(); ++i) {
    const Point cur = curve.decode(i);
    i64 manhattan = 0;
    for (int d = 0; d < 4; ++d) manhattan += std::abs(cur[d] - prev[d]);
    ASSERT_EQ(manhattan, 1) << "at index " << i;
    prev = cur;
  }
}

TEST(Spans4D, GranularityBeyondBitsRejected) {
  const SfcCurve curve(CurveKind::kHilbert, 2, 3);
  const Box q{{0, 0}, {3, 3}};
  EXPECT_THROW(box_spans(curve, q, 4), Error);
  EXPECT_THROW(box_spans(curve, q, -1), Error);
  EXPECT_NO_THROW(box_spans(curve, q, 3));
}

}  // namespace
}  // namespace cods
