#include <gtest/gtest.h>

#include <map>

#include "geometry/halo.hpp"

namespace cods {
namespace {

std::map<std::pair<i32, i32>, u64> as_map(
    const std::vector<TransferVolume>& volumes) {
  std::map<std::pair<i32, i32>, u64> m;
  for (const auto& t : volumes) m[{t.src_rank, t.dst_rank}] += t.cells;
  return m;
}

TEST(Halo, OneDimensionalChain) {
  // 4 tasks on 16 cells: interior tasks have two neighbours, ends one.
  Decomposition dec({16}, {4}, Dist::kBlocked);
  const auto m = as_map(halo_volumes(dec, 1));
  EXPECT_EQ(m.size(), 6u);  // 3 undirected links, both directions
  EXPECT_EQ(m.at({0, 1}), 1u);
  EXPECT_EQ(m.at({1, 0}), 1u);
  EXPECT_EQ(m.count({0, 2}), 0u);
  EXPECT_EQ(m.count({0, 3}), 0u);
}

TEST(Halo, TwoDimensionalGridFaceAreas) {
  // 2x2 tasks over 8x6: each task is 4x3; x-faces carry 3 cells per layer,
  // y-faces carry 4.
  Decomposition dec({8, 6}, {2, 2}, Dist::kBlocked);
  const auto m = as_map(halo_volumes(dec, 1));
  // Rank layout row-major: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
  EXPECT_EQ(m.at({0, 2}), 3u);  // x-neighbour: face 3 cells
  EXPECT_EQ(m.at({0, 1}), 4u);  // y-neighbour: face 4 cells
  EXPECT_EQ(m.size(), 8u);      // 4 undirected links
}

TEST(Halo, GhostWidthScalesVolume) {
  Decomposition dec({16, 16}, {2, 2}, Dist::kBlocked);
  const auto g1 = as_map(halo_volumes(dec, 1));
  const auto g2 = as_map(halo_volumes(dec, 2));
  for (const auto& [key, v] : g1) {
    EXPECT_EQ(g2.at(key), 2 * v);
  }
}

TEST(Halo, GhostWidthClampedToLocalExtent) {
  // Each task owns 2 cells per dim; ghost width 5 must clamp to 2 layers.
  Decomposition dec({4}, {2}, Dist::kBlocked);
  const auto m = as_map(halo_volumes(dec, 5));
  EXPECT_EQ(m.at({0, 1}), 2u);
}

TEST(Halo, ZeroGhostIsEmpty) {
  Decomposition dec({8, 8}, {2, 2}, Dist::kBlocked);
  EXPECT_TRUE(halo_volumes(dec, 0).empty());
}

TEST(Halo, SymmetricCellCounts3D) {
  Decomposition dec({12, 12, 12}, {3, 2, 2}, Dist::kBlocked);
  const auto m = as_map(halo_volumes(dec, 1));
  for (const auto& [key, v] : m) {
    // Equal-size blocked partitions exchange symmetric volumes.
    EXPECT_EQ(m.at({key.second, key.first}), v);
  }
}

TEST(Halo, RequiresBlocked) {
  Decomposition dec({8}, {2}, Dist::kCyclic);
  EXPECT_THROW(halo_volumes(dec, 1), Error);
  EXPECT_NO_THROW(halo_volumes(blocked_view(dec), 1));
}

TEST(Halo, BlockedViewPreservesShape) {
  Decomposition dec({8, 6}, {2, 3}, Dist::kBlockCyclic, 2);
  const Decomposition view = blocked_view(dec);
  EXPECT_EQ(view.ntasks(), dec.ntasks());
  EXPECT_EQ(view.dim(0).extent, 8);
  EXPECT_EQ(view.dim(1).nprocs, 3);
  EXPECT_EQ(view.dim(0).dist, Dist::kBlocked);
}

TEST(Halo, EmptyRaggedTasksSkipped) {
  // 5 cells over 4 procs blocked: blocks of 2 -> 2,2,1,0. Rank 3 owns
  // nothing and must not appear.
  Decomposition dec({5}, {4}, Dist::kBlocked);
  const auto m = as_map(halo_volumes(dec, 1));
  for (const auto& [key, v] : m) {
    EXPECT_NE(key.first, 3);
    EXPECT_NE(key.second, 3);
  }
}

}  // namespace
}  // namespace cods
