file(REMOVE_RECURSE
  "libcods_platform.a"
)
