"""Check registry, findings, and the allow-marker mechanism.

Every check registers itself under a stable kebab-case name and runs over
the shared CodeIndex. A finding names its check, file:line, the offending
symbol and a remedy. Audited exceptions are in-source markers:

    banned_thing();  // codslint-allow(check-name): why this one is safe

The marker must (a) name the exact check and (b) carry a non-empty reason
after the colon — a bare marker is itself reported, so suppression debt
stays visible. Markers bind to their own line or, when written on a line of
their own, to the following line. Bait files use the sibling marker
`// codslint-expect(check-name)` which --self-test verifies fires.
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Callable, Optional

from .model import CodeIndex

ALLOW_RE = re.compile(r"codslint-allow\(([a-z-]+)\)\s*(?::\s*(\S.*))?")
EXPECT_RE = re.compile(r"codslint-expect\(([a-z-]+)\)")


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str
    symbol: str = ""

    def render(self, root: Optional[str] = None) -> str:
        path = self.file
        if root and path.startswith(root):
            path = path[len(root):].lstrip("/")
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{path}:{self.line}: [{self.check}] {self.message}{sym}"

    def as_json(self, root: Optional[str] = None) -> dict:
        path = self.file
        if root and path.startswith(root):
            path = path[len(root):].lstrip("/")
        return {"check": self.check, "file": path, "line": self.line,
                "message": self.message, "symbol": self.symbol}


class Check:
    """Base class. Subclasses set `name` / `description` and implement
    run(index) -> list[Finding]."""

    name = ""
    description = ""

    def run(self, index: CodeIndex) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, Callable[[], Check]] = {}


def register(factory: Callable[[], Check]) -> Callable[[], Check]:
    check = factory()
    assert check.name, f"{factory} has no name"
    _REGISTRY[check.name] = factory
    return factory


def all_checks() -> dict[str, Callable[[], Check]]:
    return dict(_REGISTRY)


def make_checks(names: Optional[list[str]] = None) -> list[Check]:
    selected = names or sorted(_REGISTRY)
    unknown = [n for n in selected if n not in _REGISTRY]
    if unknown:
        raise SystemExit(
            f"codslint: unknown check(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(_REGISTRY))}")
    return [_REGISTRY[n]() for n in selected]


def apply_allow_markers(findings: list[Finding],
                        index: CodeIndex) -> tuple[list[Finding],
                                                   list[Finding]]:
    """Split into (kept, suppressed). A malformed marker (missing reason)
    converts the suppression into its own finding."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        lf = index.files.get(f.file)
        marker = None
        if lf is not None:
            for line in (f.line, f.line - 1):
                text = lf.comment_by_line.get(line)
                if not text:
                    continue
                m = ALLOW_RE.search(text)
                if m and m.group(1) == f.check:
                    marker = m
                    break
        if marker is None:
            kept.append(f)
        elif not marker.group(2):
            kept.append(Finding(
                f.check, f.file, f.line,
                "allow-marker without a reason; write "
                f"`codslint-allow({f.check}): <why>` (policy: "
                "docs/STATIC_ANALYSIS.md)", f.symbol))
        else:
            suppressed.append(f)
    return kept, suppressed


def expected_findings(index: CodeIndex) -> list[tuple[str, str, int]]:
    """(check, file, line) for every codslint-expect marker in the corpus.
    A marker on its own line binds to the next line, like allow markers."""
    out = []
    for path, lf in index.files.items():
        code_lines = {t.line for t in lf.tokens}
        for c in lf.comments:
            for m in EXPECT_RE.finditer(c.text):
                line = c.line if c.line in code_lines else c.line + 1
                out.append((m.group(1), path, line))
    return out


def to_json(kept: list[Finding], suppressed: list[Finding],
            root: Optional[str] = None) -> str:
    return json.dumps(
        {
            "version": 1,
            "findings": [f.as_json(root) for f in kept],
            "suppressed": [f.as_json(root) for f in suppressed],
        },
        indent=2) + "\n"
