// Generator edge cases: degenerate DAG shapes, zero-byte owners, the
// single-node platform, and a workflow where *every* wave loses a node.
// Each scenario runs under kSimulate and kPooled through the same
// differential comparator and oracle suite as the random sweeps — the
// corners get no weaker checking than the bulk.
#include <gtest/gtest.h>

#include "fuzz/fuzz_common.hpp"

namespace cods {
namespace {

using testing::dump_scenario;
using testing::enact_checked;
using testing::expect_oracles;
using wfgen::AppRole;
using wfgen::GenApp;
using wfgen::ScenarioSpec;
using wfgen::Topology;

/// Differential + oracles, the full treatment for one scenario.
void check_everything(const ScenarioSpec& spec) {
  wfgen::EnactResult sim;
  wfgen::EnactResult pooled;
  if (!enact_checked(spec, {.mode = ExecMode::kSimulate}, sim)) return;
  if (!enact_checked(spec, {.mode = ExecMode::kPooled}, pooled)) return;
  const std::string diff = wfgen::diff_runs(sim, pooled);
  if (!diff.empty()) {
    dump_scenario(spec);
    ADD_FAILURE() << "seed " << spec.seed << " diverges across modes: "
                  << diff;
  }
  expect_oracles(spec, sim, "kSimulate");
  expect_oracles(spec, pooled, "kPooled");
}

GenApp pattern_app(AppRole role, i32 id, const std::string& name,
                   std::vector<i32> procs, i32 versions) {
  GenApp app;
  app.role = role;
  app.app_id = id;
  app.name = name;
  app.procs = std::move(procs);
  app.versions = versions;
  return app;
}

TEST(FuzzEdge, DepthOneDegenerateDagIsALoneProducer) {
  // The smallest possible workflow: one app, one wave, no coupling.
  ScenarioSpec spec;
  spec.seed = 1;
  spec.topology = Topology::kPipeline;
  spec.cluster = ClusterSpec{.num_nodes = 2, .cores_per_node = 4};
  spec.extents = {8, 8};
  GenApp solo = pattern_app(AppRole::kPatternProducer, 1, "solo", {2, 2},
                            /*versions=*/2);
  solo.produces = {"s1"};
  solo.pattern_seed = 11;
  spec.apps = {solo};
  ASSERT_EQ(spec.dag().waves().size(), 1u);
  EXPECT_EQ(spec.expected_stored_bytes(), 2u * 8 * 8 * 8);
  check_everything(spec);
}

TEST(FuzzEdge, WidthOneForkJoinIsAPlainProducerConsumerPair) {
  ScenarioSpec spec;
  spec.seed = 2;
  spec.topology = Topology::kForkJoin;
  spec.cluster = ClusterSpec{.num_nodes = 3, .cores_per_node = 4};
  spec.extents = {12, 6};
  GenApp producer = pattern_app(AppRole::kPatternProducer, 1, "producer",
                                {3, 2}, /*versions=*/1);
  producer.produces = {"v1"};
  producer.pattern_seed = 21;
  GenApp consumer = pattern_app(AppRole::kPatternConsumer, 2, "consumer",
                                {2, 1}, /*versions=*/1);
  consumer.consumes = {"v1"};
  consumer.consume_seed = 21;
  spec.apps = {producer, consumer};
  spec.edges = {{1, 2}};
  ASSERT_EQ(spec.dag().waves().size(), 2u);
  check_everything(spec);
}

TEST(FuzzEdge, ZeroByteOwnersFromOverdecomposedDimension) {
  // 1 cell along dim 0 split over 4 processes: ranks 1-3 own nothing and
  // must enact cleanly — no puts, no gets, no bytes, just the barrier.
  ScenarioSpec spec;
  spec.seed = 3;
  spec.topology = Topology::kForkJoin;
  spec.cluster = ClusterSpec{.num_nodes = 3, .cores_per_node = 4};
  spec.extents = {1, 6};
  GenApp producer = pattern_app(AppRole::kPatternProducer, 1, "producer",
                                {4, 1}, /*versions=*/2);
  producer.produces = {"v1"};
  producer.pattern_seed = 31;
  GenApp consumer = pattern_app(AppRole::kPatternConsumer, 2, "consumer",
                                {1, 4}, /*versions=*/2);
  consumer.consumes = {"v1"};
  consumer.consume_seed = 31;
  spec.apps = {producer, consumer};
  spec.edges = {{1, 2}};
  // Only the owning ranks store: 1x6 cells x 8 bytes x 2 versions.
  EXPECT_EQ(spec.expected_stored_bytes(), 2u * 1 * 6 * 8);
  check_everything(spec);
}

TEST(FuzzEdge, SingleNodePlatformKeepsEveryByteInSharedMemory) {
  ScenarioSpec spec;
  spec.seed = 4;
  spec.topology = Topology::kPipeline;
  spec.cluster = ClusterSpec{.num_nodes = 1, .cores_per_node = 6};
  spec.extents = {10, 10};
  GenApp producer = pattern_app(AppRole::kPatternProducer, 1, "stage1",
                                {2, 2}, /*versions=*/1);
  producer.produces = {"s1"};
  producer.pattern_seed = 41;
  GenApp relay = pattern_app(AppRole::kPatternRelay, 2, "stage2", {1, 2},
                             /*versions=*/1);
  relay.consumes = {"s1"};
  relay.consume_seed = 41;
  relay.produces = {"s2"};
  relay.pattern_seed = 42;
  GenApp consumer = pattern_app(AppRole::kPatternConsumer, 3, "stage3",
                                {2, 1}, /*versions=*/1);
  consumer.consumes = {"s2"};
  consumer.consume_seed = 42;
  spec.apps = {producer, relay, consumer};
  spec.edges = {{1, 2}, {2, 3}};

  wfgen::EnactResult sim;
  ASSERT_TRUE(enact_checked(spec, {.mode = ExecMode::kSimulate}, sim));
  expect_oracles(spec, sim, "kSimulate");
  // One node: network traffic is impossible, shm traffic is not.
  u64 net = 0;
  u64 shm = 0;
  for (const auto* counters : {&sim.inter, &sim.intra, &sim.control}) {
    for (const auto& [app, c] : *counters) {
      net += c.net_bytes;
      shm += c.shm_bytes;
    }
  }
  EXPECT_EQ(net, 0u);
  EXPECT_GT(shm, 0u);
  check_everything(spec);
}

TEST(FuzzEdge, EveryWaveLosesANode) {
  // Depth-3 pipeline on 5 nodes; waves 0, 1, 2 lose nodes 0, 1, 2. Each
  // victim hosts work when it dies and every recovery must re-home onto
  // the shrinking survivor set while all oracles keep holding.
  ScenarioSpec spec;
  spec.seed = 5;
  spec.topology = Topology::kPipeline;
  spec.cluster = ClusterSpec{.num_nodes = 5, .cores_per_node = 4};
  spec.extents = {16, 8};
  GenApp producer = pattern_app(AppRole::kPatternProducer, 1, "stage1",
                                {4, 2}, /*versions=*/1);
  producer.produces = {"s1"};
  producer.pattern_seed = 51;
  GenApp relay = pattern_app(AppRole::kPatternRelay, 2, "stage2", {2, 4},
                             /*versions=*/1);
  relay.consumes = {"s1"};
  relay.consume_seed = 51;
  relay.produces = {"s2"};
  relay.pattern_seed = 52;
  GenApp consumer = pattern_app(AppRole::kPatternConsumer, 3, "stage3",
                                {4, 2}, /*versions=*/1);
  consumer.consumes = {"s2"};
  consumer.consume_seed = 52;
  spec.apps = {producer, relay, consumer};
  spec.edges = {{1, 2}, {2, 3}};
  spec.faulty = true;
  spec.fault.seed = 5;
  spec.fault.crashes = {NodeCrash{/*wave=*/0, /*node=*/0, /*after_ops=*/0},
                        NodeCrash{/*wave=*/1, /*node=*/1, /*after_ops=*/0},
                        NodeCrash{/*wave=*/2, /*node=*/2, /*after_ops=*/0}};
  ASSERT_EQ(spec.dag().waves().size(), 3u);

  wfgen::EnactResult sim;
  ASSERT_TRUE(enact_checked(spec, {.mode = ExecMode::kSimulate}, sim));
  expect_oracles(spec, sim, "kSimulate");
  ASSERT_EQ(sim.reports.size(), 3u);
  for (size_t w = 0; w < sim.reports.size(); ++w) {
    EXPECT_EQ(sim.reports[w].failed_nodes,
              std::vector<i32>{static_cast<i32>(w)})
        << "wave " << w;
    EXPECT_GT(sim.reports[w].attempts, 1) << "wave " << w;
    EXPECT_GT(sim.reports[w].reexecuted_tasks, 0) << "wave " << w;
  }
  // All three victims dead, data still verified end to end.
  EXPECT_EQ(sim.dead_nodes, (std::vector<i32>{0, 1, 2}));
  EXPECT_EQ(sim.mismatches, 0u);
  check_everything(spec);
}

TEST(FuzzEdge, GeneratedDegenerateCornersPassOracles) {
  // Drive the *sampler* into its corners too: 1-D domains, width/depth 1,
  // minimum cluster — whatever the constrained parameter space yields.
  wfgen::GenParams params;
  params.max_nodes = 2;
  params.max_cores_per_node = 2;
  params.max_width = 1;
  params.max_depth = 1;
  params.max_dims = 1;
  params.max_extent = 4;
  params.allow_faults = false;
  const u64 base = testing::fuzz_base_seed(9200);
  const i32 count = testing::fuzz_count(12);
  for (i32 i = 0; i < count; ++i) {
    const u64 seed = base + static_cast<u64>(i);
    CODS_SEED_TRACE("CODS_FUZZ_SEED", seed);
    const ScenarioSpec spec = wfgen::generate(seed, params);
    wfgen::EnactResult sim;
    if (!enact_checked(spec, {.mode = ExecMode::kSimulate}, sim)) continue;
    expect_oracles(spec, sim, "kSimulate");
  }
}

}  // namespace
}  // namespace cods
