// Undirected weighted graphs in CSR form, used for the inter-application
// communication graphs that drive server-side data-centric task mapping
// (paper §IV-B: vertices = computation tasks, edges = coupled-data volume).
#pragma once

#include <span>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cods {

/// CSR adjacency with vertex and edge weights. Every undirected edge is
/// stored twice (once per endpoint), with equal weights.
struct Graph {
  i32 nvtx = 0;
  std::vector<i64> xadj;    ///< size nvtx + 1
  std::vector<i32> adjncy;  ///< neighbour vertex ids
  std::vector<i64> adjwgt;  ///< edge weights, parallel to adjncy
  std::vector<i64> vwgt;    ///< vertex weights, size nvtx

  /// Builds a graph from an edge list; parallel edges are merged by summing
  /// weights, self-loops are dropped. Vertex weights default to 1.
  static Graph from_edges(i32 nvtx,
                          const std::vector<std::tuple<i32, i32, i64>>& edges,
                          std::vector<i64> vertex_weights = {});

  i64 degree(i32 v) const { return xadj[static_cast<size_t>(v) + 1] -
                                   xadj[static_cast<size_t>(v)]; }

  i64 total_vertex_weight() const;
  i64 total_edge_weight() const;  ///< each undirected edge counted once

  /// Sum of weights of edges whose endpoints lie in different parts.
  i64 edge_cut(std::span<const i32> part) const;

  /// Structural invariants (sorted CSR not required; symmetry is).
  void validate() const;
};

}  // namespace cods
