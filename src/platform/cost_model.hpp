// Transfer-time model for the virtual cluster. Reproduces the *shape* of the
// paper's timing results: shared-memory transfers are an order of magnitude
// faster than network transfers, and concurrent network flows contend on
// shared torus links and node NICs (the effect behind Fig. 16's mild growth).
//
// A batch of flows (all started together, receiver-driven pull) completes in
//   T = max_resource(load / bandwidth) + max_flow(hops) * per_hop_latency
// where resources are: each directed torus link on a flow's dimension-order
// route, each endpoint NIC (injection/ejection), and each node's memory bus
// for intra-node (shared-memory) flows.
#pragma once

#include <vector>

#include "platform/cluster.hpp"

namespace cods {

/// Fabric and memory-system parameters. Defaults approximate a Cray XT5:
/// SeaStar2+ ~2 GB/s injection, ~9.6 GB/s links, microsecond-scale latency;
/// intra-node shared memory ~6 GB/s effective with sub-microsecond latency.
struct CostParams {
  double link_bw = 9.6e9;    ///< bytes/s per directed torus link
  double nic_bw = 2.0e9;     ///< bytes/s injection/ejection per node
  double hop_latency = 2e-6;  ///< seconds per network hop
  double net_latency = 5e-6;  ///< fixed per-transfer network setup cost
  double shm_bw = 6.0e9;     ///< bytes/s node-local memory streaming
  double shm_latency = 5e-7;  ///< seconds per shared-memory transfer
  double rpc_bytes = 256;    ///< modelled size of one RPC/query message
};

/// Named fabric presets for sensitivity studies. The paper's motivation —
/// a growing gap between on-chip sharing and off-chip transfers — shows up
/// directly: the slower the fabric relative to memory, the bigger the
/// data-centric mapping win.
namespace fabric {

/// Cray SeaStar2+ (Jaguar XT5, the paper's testbed). Same as the defaults.
CostParams seastar2();

/// Cray Gemini (XE6/XK7 generation): ~3x the injection bandwidth,
/// lower latency.
CostParams gemini();

/// A modern 100 Gbps-class fabric with near-memory-speed links.
CostParams modern_hpc();

}  // namespace fabric

/// One data movement between two cores.
struct Flow {
  CoreLoc src;
  CoreLoc dst;
  u64 bytes = 0;
};

/// Estimates completion times for flow batches on a given cluster.
class CostModel {
 public:
  CostModel(const Cluster& cluster, CostParams params = {})
      : cluster_(&cluster), params_(params) {}

  const CostParams& params() const { return params_; }

  /// Time for a single isolated flow.
  double flow_time(const Flow& flow) const;

  /// Completion time of a batch of concurrent flows (receiver-driven pull:
  /// all requests issued together, transfer pipeline saturates the
  /// bottleneck resource).
  double batch_time(const std::vector<Flow>& flows) const;

  /// Completion time of `primary` flows while `background` flows contend
  /// for the same links/NICs (e.g. two consumer applications pulling
  /// simultaneously in the sequential coupling scenario). Only resources
  /// actually used by a primary flow bound the result, but their load
  /// includes the background traffic.
  double batch_time_with_background(const std::vector<Flow>& primary,
                                    const std::vector<Flow>& background) const;

  /// Time for `count` small RPC round-trips between two cores (DHT queries).
  double rpc_time(const CoreLoc& src, const CoreLoc& dst, u64 count = 1) const;

 private:
  const Cluster* cluster_;
  CostParams params_;
};

}  // namespace cods
