file(REMOVE_RECURSE
  "CMakeFiles/ablation_schedule_cache.dir/ablation_schedule_cache.cpp.o"
  "CMakeFiles/ablation_schedule_cache.dir/ablation_schedule_cache.cpp.o.d"
  "ablation_schedule_cache"
  "ablation_schedule_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schedule_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
