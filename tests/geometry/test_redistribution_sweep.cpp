// Property tests pinning the sweep-based redistribution build to the
// naive all-pairs oracle: for randomized decomposition pairs the two
// must produce *identical* transfer lists — same pairs, same cell
// counts, same order — and the comm graph derived from them must match.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "geometry/redistribution.hpp"
#include "support/seed_report.hpp"
#include "workflow/mapping.hpp"

namespace cods {
namespace {

i64 uniform(Rng& rng, i64 lo, i64 hi) {
  return lo + static_cast<i64>(rng() % static_cast<u64>(hi - lo + 1));
}

Dist random_dist(Rng& rng) {
  switch (rng() % 3) {
    case 0:
      return Dist::kBlocked;
    case 1:
      return Dist::kCyclic;
    default:
      return Dist::kBlockCyclic;
  }
}

Decomposition random_decomposition(Rng& rng,
                                   const std::vector<i64>& extents) {
  std::vector<DimSpec> dims;
  for (i64 extent : extents) {
    DimSpec spec;
    spec.extent = extent;
    spec.nprocs = static_cast<i32>(uniform(rng, 1, std::min<i64>(5, extent)));
    spec.dist = random_dist(rng);
    spec.block = uniform(rng, 1, 4);
    dims.push_back(spec);
  }
  return Decomposition(dims);
}

void expect_identical(const std::vector<TransferVolume>& sweep,
                      const std::vector<TransferVolume>& naive, u64 seed) {
  ASSERT_EQ(sweep.size(), naive.size()) << "seed " << seed;
  for (size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].src_rank, naive[i].src_rank) << "seed " << seed;
    EXPECT_EQ(sweep[i].dst_rank, naive[i].dst_rank) << "seed " << seed;
    EXPECT_EQ(sweep[i].cells, naive[i].cells) << "seed " << seed;
  }
}

class RedistributionSweep : public ::testing::TestWithParam<u64> {};

TEST_P(RedistributionSweep, VolumesEqualAllPairsOracle) {
  const u64 seed = GetParam();
  CODS_SEED_NOTE(seed);
  Rng rng(seed);
  const int nd = static_cast<int>(uniform(rng, 1, 3));
  std::vector<i64> extents;
  for (int d = 0; d < nd; ++d) extents.push_back(uniform(rng, 8, 40));
  const Decomposition src = random_decomposition(rng, extents);
  const Decomposition dst = random_decomposition(rng, extents);

  const auto sweep = redistribution_volumes(src, dst);
  const auto naive = redistribution_volumes_allpairs(src, dst);
  expect_identical(sweep, naive, seed);
  // Ownership covers the domain on both sides, so the overlaps tile it.
  EXPECT_EQ(total_cells(sweep), src.domain_cells()) << "seed " << seed;

  // Same comparison restricted to a random sub-region.
  Box region;
  region.lb = Point::zeros(nd);
  region.ub = Point::zeros(nd);
  for (int d = 0; d < nd; ++d) {
    const i64 a = uniform(rng, 0, extents[static_cast<size_t>(d)] - 1);
    const i64 b = uniform(rng, 0, extents[static_cast<size_t>(d)] - 1);
    region.lb[d] = std::min(a, b);
    region.ub[d] = std::max(a, b);
  }
  expect_identical(redistribution_volumes(src, dst, region),
                   redistribution_volumes_allpairs(src, dst, region), seed);
}

TEST_P(RedistributionSweep, CommGraphMatchesAllPairsVolumes) {
  const u64 seed = GetParam();
  CODS_SEED_NOTE(seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<i64> extents = {uniform(rng, 8, 32), uniform(rng, 8, 32)};
  AppSpec a;
  a.app_id = 1;
  a.name = "producer";
  a.dec = random_decomposition(rng, extents);
  a.elem_size = 8;
  AppSpec b;
  b.app_id = 2;
  b.name = "consumer";
  b.dec = random_decomposition(rng, extents);
  b.elem_size = 8;

  // The production comm graph (built on the sweep path) must carry
  // exactly the edges the naive volumes imply, with byte weights.
  const Graph graph = bundle_comm_graph({a, b});
  i64 graph_weight = 0;
  for (i64 w : graph.adjwgt) graph_weight += w;
  u64 naive_bytes = 0;
  for (const auto& t : redistribution_volumes_allpairs(a.dec, b.dec)) {
    naive_bytes += t.cells * a.elem_size;
  }
  // Each undirected edge appears in both endpoints' adjacency.
  EXPECT_EQ(static_cast<u64>(graph_weight), 2 * naive_bytes)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistributionSweep,
                         ::testing::Range<u64>(1, 17));

}  // namespace
}  // namespace cods
