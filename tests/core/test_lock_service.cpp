#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/lock_service.hpp"

namespace cods {
namespace {

const Endpoint kA{0, CoreLoc{0, 0}};
const Endpoint kB{1, CoreLoc{0, 1}};
const Endpoint kC{2, CoreLoc{1, 0}};

TEST(LockService, ReadersShare) {
  LockService locks;
  locks.lock_read("v", kA);
  locks.lock_read("v", kB);
  EXPECT_EQ(locks.readers("v"), 2);
  locks.unlock_read("v", kA);
  locks.unlock_read("v", kB);
  EXPECT_EQ(locks.readers("v"), 0);
}

TEST(LockService, WriterExcludesReaders) {
  LockService locks;
  locks.lock_write("v", kA);
  EXPECT_TRUE(locks.write_locked("v"));
  EXPECT_FALSE(locks.try_lock_read("v", kB));
  EXPECT_FALSE(locks.try_lock_write("v", kB));
  locks.unlock_write("v", kA);
  EXPECT_TRUE(locks.try_lock_read("v", kB));
  locks.unlock_read("v", kB);
}

TEST(LockService, ReaderExcludesWriter) {
  LockService locks;
  locks.lock_read("v", kA);
  EXPECT_FALSE(locks.try_lock_write("v", kB));
  locks.unlock_read("v", kA);
  EXPECT_TRUE(locks.try_lock_write("v", kB));
  locks.unlock_write("v", kB);
}

TEST(LockService, IndependentNames) {
  LockService locks;
  locks.lock_write("a", kA);
  EXPECT_TRUE(locks.try_lock_write("b", kB));
  locks.unlock_write("a", kA);
  locks.unlock_write("b", kB);
}

TEST(LockService, WriterBlocksUntilReadersDrain) {
  LockService locks;
  locks.lock_read("v", kA);
  std::atomic<bool> acquired{false};
  std::thread writer([&] {
    locks.lock_write("v", kB);
    acquired = true;
    locks.unlock_write("v", kB);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  locks.unlock_read("v", kA);
  writer.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockService, WriterPreferenceBlocksNewReaders) {
  LockService locks;
  locks.lock_read("v", kA);
  std::thread writer([&] { WriteLock guard(locks, "v", kB); });
  // Give the writer time to queue; a new reader must now be refused.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(locks.try_lock_read("v", kC));
  locks.unlock_read("v", kA);
  writer.join();
  EXPECT_TRUE(locks.try_lock_read("v", kC));
  locks.unlock_read("v", kC);
}

TEST(LockService, MisuseRejected) {
  LockService locks;
  EXPECT_THROW(locks.unlock_read("v", kA), Error);
  EXPECT_THROW(locks.unlock_write("v", kA), Error);
  locks.lock_write("v", kA);
  EXPECT_THROW(locks.unlock_write("v", kB), Error);  // not the holder
  locks.unlock_write("v", kA);
}

TEST(LockService, TimeoutThrows) {
  LockService locks;
  locks.lock_write("v", kA);
  EXPECT_THROW(locks.lock_write("v", kB, std::chrono::seconds(0)), Error);
  EXPECT_THROW(locks.lock_read("v", kB, std::chrono::seconds(0)), Error);
  locks.unlock_write("v", kA);
}

TEST(LockService, RaiiGuards) {
  LockService locks;
  {
    WriteLock guard(locks, "v", kA);
    EXPECT_TRUE(locks.write_locked("v"));
  }
  EXPECT_FALSE(locks.write_locked("v"));
  {
    ReadLock guard(locks, "v", kA);
    EXPECT_EQ(locks.readers("v"), 1);
  }
  EXPECT_EQ(locks.readers("v"), 0);
}

TEST(LockService, AccountsControlTraffic) {
  Cluster cluster(ClusterSpec{.num_nodes = 2, .cores_per_node = 2});
  Metrics metrics;
  HybridDart dart(cluster, metrics);
  LockService locks(&dart);
  locks.lock_write("v", kA);
  locks.unlock_write("v", kA);
  EXPECT_GT(metrics.counters(0, TrafficClass::kControl).transfers, 0u);
}

TEST(LockService, StressManyReadersAndWriters) {
  LockService locks;
  std::atomic<i32> inside_writers{0};
  std::atomic<i32> inside_readers{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const Endpoint me{t, CoreLoc{0, t}};
      for (int i = 0; i < 200; ++i) {
        if ((t + i) % 4 == 0) {
          WriteLock guard(locks, "shared", me);
          if (++inside_writers != 1 || inside_readers != 0) violation = true;
          --inside_writers;
        } else {
          ReadLock guard(locks, "shared", me);
          if (++inside_readers < 1 || inside_writers != 0) violation = true;
          --inside_readers;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace cods
