// The CoDS distributed hash table (paper §IV-A, Fig. 6): the application
// domain is linearized with a Hilbert space-filling curve; the 1-D index
// space is divided into contiguous intervals, one per DHT core (one DHT
// core per compute node). Each DHT core keeps a location table recording,
// for every shared variable and version, which regions exist and where the
// bytes are stored (which client/storage endpoint exposes them).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "platform/cluster.hpp"
#include "sfc/curve.hpp"

namespace cods {

/// A record in a location table: a stored region of a variable and the
/// window that serves it.
struct DataLocation {
  Box box;             ///< region covered by this record
  i32 owner_client = -1;  ///< client id exposing the window (storage or app)
  CoreLoc owner_loc;   ///< where the bytes physically live
  u64 window_key = 0;  ///< HybridDART window key
};

/// Result of a lookup: matching records plus the DHT cores contacted
/// (used by the caller to account query RPC costs).
struct LookupResult {
  std::vector<DataLocation> locations;
  std::vector<i32> dht_nodes;
};

/// The data-lookup service. Thread-safe.
class CodsDht {
 public:
  /// `granularity_log2` coarsens box->span decomposition when routing
  /// queries (over-coverage only adds harmless extra owner cores).
  CodsDht(const Cluster& cluster, SfcCurve curve, int granularity_log2 = 0);

  const SfcCurve& curve() const { return curve_; }
  i32 num_dht_cores() const { return cluster_->num_nodes(); }

  /// The DHT core responsible for one curve index.
  i32 owner_node(u64 index) const;

  /// The curve-index interval [lo, hi] assigned to a DHT core.
  IndexSpan node_interval(i32 node) const;

  /// All DHT cores whose interval intersects the query box.
  std::vector<i32> owner_nodes(const Box& query) const;

  /// Registers a stored region with every DHT core responsible for part of
  /// it. Returns the number of DHT cores updated.
  i32 insert(const std::string& var, i32 version, const DataLocation& loc);

  /// Finds all records of (var, version) intersecting `region`,
  /// deduplicated across DHT cores.
  LookupResult query(const std::string& var, i32 version,
                     const Box& region) const;

  /// Drops all records of (var, version); returns records removed
  /// (counted once per DHT core holding them).
  i64 retire(const std::string& var, i32 version);

  /// Failure recovery: drops every record whose bytes live on `node`
  /// (across all variables and versions). Returns records removed.
  i64 drop_node_locations(i32 node);

  /// Number of records held by one DHT core (for balance diagnostics).
  i64 node_record_count(i32 node) const;

  /// Monotonic mutation epoch of (var, version): bumped after every
  /// insert() or retire() of the key and after drop_node_locations()
  /// removes any of its records. A lookup result cached together with the
  /// epoch observed *before* the query is valid exactly while
  /// epoch(var, version) still returns that value (docs/PERF.md).
  u64 epoch(const std::string& var, i32 version) const;

 private:
  void bump_epoch(const std::string& var, i32 version);
  struct NodeTable {
    mutable Mutex mutex{"dht.table"};
    // (var, version) -> records whose region intersects this core's interval
    std::map<std::pair<std::string, i32>, std::vector<DataLocation>> records
        CODS_GUARDED_BY(mutex);
  };

  const Cluster* cluster_;
  SfcCurve curve_;
  int granularity_log2_;
  u64 indices_per_node_;
  std::vector<std::unique_ptr<NodeTable>> tables_;

  // Epochs are never erased (a retire must keep invalidating entries
  // cached before it), only bumped; one u64 per (var, version) ever seen.
  mutable Mutex epoch_mutex_{"dht.epochs"};
  std::map<std::pair<std::string, i32>, u64> epochs_
      CODS_GUARDED_BY(epoch_mutex_);
};

}  // namespace cods
