file(REMOVE_RECURSE
  "CMakeFiles/cods_sfc.dir/curve.cpp.o"
  "CMakeFiles/cods_sfc.dir/curve.cpp.o.d"
  "libcods_sfc.a"
  "libcods_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cods_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
