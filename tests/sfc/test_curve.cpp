#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "sfc/curve.hpp"

namespace cods {
namespace {

class CurveParam
    : public ::testing::TestWithParam<std::tuple<CurveKind, int, int>> {
 protected:
  SfcCurve curve() const {
    const auto& [kind, nd, bits] = GetParam();
    return SfcCurve(kind, nd, bits);
  }
};

TEST_P(CurveParam, EncodeDecodeBijective) {
  const SfcCurve c = curve();
  if (c.size() > (1u << 16)) GTEST_SKIP() << "grid too large for full sweep";
  std::set<u64> seen;
  // Enumerate every grid point; indices must be a permutation of [0, size).
  std::vector<i64> coord(static_cast<size_t>(c.ndim()), 0);
  for (;;) {
    Point p = Point::zeros(c.ndim());
    for (int d = 0; d < c.ndim(); ++d) p[d] = coord[static_cast<size_t>(d)];
    const u64 index = c.encode(p);
    EXPECT_LT(index, c.size());
    EXPECT_TRUE(seen.insert(index).second) << "duplicate index " << index;
    EXPECT_EQ(c.decode(index), p);
    int d = c.ndim() - 1;
    for (; d >= 0; --d) {
      if (++coord[static_cast<size_t>(d)] < c.side()) break;
      coord[static_cast<size_t>(d)] = 0;
    }
    if (d < 0) break;
  }
  EXPECT_EQ(seen.size(), c.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CurveParam,
    ::testing::Combine(::testing::Values(CurveKind::kHilbert,
                                         CurveKind::kMorton),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3)));

TEST(Hilbert, ConsecutiveIndicesAreGridNeighbours) {
  // The defining Hilbert property Morton lacks: consecutive curve indices
  // differ by exactly one step in exactly one dimension.
  for (int nd : {2, 3}) {
    SfcCurve c(CurveKind::kHilbert, nd, 3);
    Point prev = c.decode(0);
    for (u64 i = 1; i < c.size(); ++i) {
      const Point cur = c.decode(i);
      i64 manhattan = 0;
      for (int d = 0; d < nd; ++d) manhattan += std::abs(cur[d] - prev[d]);
      ASSERT_EQ(manhattan, 1) << "at index " << i;
      prev = cur;
    }
  }
}

TEST(Morton, IsBitInterleave) {
  SfcCurve c(CurveKind::kMorton, 2, 4);
  // In our MSB-first interleave over (x0, x1), x0 contributes the higher bit
  // of each pair: index = sum over bits of (x0_b << (2b+1)) | (x1_b << 2b).
  EXPECT_EQ(c.encode(Point{0, 1}), 1u);
  EXPECT_EQ(c.encode(Point{1, 0}), 2u);
  EXPECT_EQ(c.encode(Point{1, 1}), 3u);
  EXPECT_EQ(c.encode(Point{2, 0}), 8u);
}

TEST(Hilbert, Canonical2x2) {
  // 2x2 Hilbert curve starting at origin visits 4 cells in a U shape;
  // endpoints of the curve are grid neighbours of start for bits=1.
  SfcCurve c(CurveKind::kHilbert, 2, 1);
  const Point start = c.decode(0);
  const Point end = c.decode(3);
  i64 manhattan = 0;
  for (int d = 0; d < 2; ++d) manhattan += std::abs(end[d] - start[d]);
  EXPECT_EQ(manhattan, 1);
}

TEST(Curve, BitsForExtent) {
  EXPECT_EQ(SfcCurve::bits_for_extent(1), 1);
  EXPECT_EQ(SfcCurve::bits_for_extent(2), 1);
  EXPECT_EQ(SfcCurve::bits_for_extent(3), 2);
  EXPECT_EQ(SfcCurve::bits_for_extent(1024), 10);
  EXPECT_EQ(SfcCurve::bits_for_extent(1025), 11);
}

TEST(Curve, RejectsBadConfig) {
  EXPECT_THROW(SfcCurve(CurveKind::kHilbert, 0, 4), Error);
  EXPECT_THROW(SfcCurve(CurveKind::kHilbert, 3, 30), Error);  // 90 bits
  SfcCurve c(CurveKind::kHilbert, 2, 2);
  EXPECT_THROW(c.encode(Point{4, 0}), Error);   // out of grid
  EXPECT_THROW(c.encode(Point{0, 0, 0}), Error);  // wrong dimension
  EXPECT_THROW(c.decode(16), Error);
}

class SpanParam
    : public ::testing::TestWithParam<std::tuple<CurveKind, int>> {};

TEST_P(SpanParam, SpansCoverExactlyTheBox) {
  const auto& [kind, nd] = GetParam();
  SfcCurve c(kind, nd, 3);
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    Box q;
    q.lb = Point::zeros(nd);
    q.ub = Point::zeros(nd);
    for (int d = 0; d < nd; ++d) {
      const i64 a = rng.range(0, c.side() - 1);
      const i64 b = rng.range(0, c.side() - 1);
      q.lb[d] = std::min(a, b);
      q.ub[d] = std::max(a, b);
    }
    const auto spans = box_spans(c, q);
    // Exact coverage: total span cells == box volume, and every span index
    // decodes into the box.
    EXPECT_EQ(span_cells(spans), q.volume());
    for (const auto& s : spans) {
      EXPECT_TRUE(q.contains(c.decode(s.lo)));
      EXPECT_TRUE(q.contains(c.decode(s.hi)));
    }
    // Sorted and non-adjacent.
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GT(spans[i].lo, spans[i - 1].hi + 1);
    }
  }
}

TEST_P(SpanParam, FullDomainIsOneSpan) {
  const auto& [kind, nd] = GetParam();
  SfcCurve c(kind, nd, 4);
  Box whole;
  whole.lb = Point::zeros(nd);
  whole.ub = Point::zeros(nd);
  for (int d = 0; d < nd; ++d) whole.ub[d] = c.side() - 1;
  const auto spans = box_spans(c, whole);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (IndexSpan{0, c.size() - 1}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpanParam,
    ::testing::Combine(::testing::Values(CurveKind::kHilbert,
                                         CurveKind::kMorton),
                       ::testing::Values(1, 2, 3)));

TEST(Spans, CoarseGranularityOvercovers) {
  SfcCurve c(CurveKind::kHilbert, 2, 4);
  const Box q{{1, 1}, {6, 6}};
  const auto exact = box_spans(c, q);
  const auto coarse = box_spans(c, q, /*min_side_log2=*/2);
  EXPECT_GE(span_cells(coarse), q.volume());
  EXPECT_LE(coarse.size(), exact.size());
  // Over-coverage must still be aligned 4x4 subcubes: multiples of 16 cells.
  u64 covered = span_cells(coarse);
  EXPECT_EQ(covered % 16, 0u);
}

TEST(Spans, HilbertLocalityBeatsMortonOnAverage) {
  // The design rationale for Hilbert indexing (DESIGN.md ablation 2):
  // box queries decompose into fewer spans than with Morton order.
  SfcCurve h(CurveKind::kHilbert, 2, 6);
  SfcCurve m(CurveKind::kMorton, 2, 6);
  Rng rng(99);
  u64 hilbert_spans = 0;
  u64 morton_spans = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Box q;
    q.lb = Point::zeros(2);
    q.ub = Point::zeros(2);
    for (int d = 0; d < 2; ++d) {
      const i64 a = rng.range(0, 40);
      q.lb[d] = a;
      q.ub[d] = a + rng.range(4, 20);
    }
    hilbert_spans += box_spans(h, q).size();
    morton_spans += box_spans(m, q).size();
  }
  EXPECT_LT(hilbert_spans, morton_spans);
}

TEST(Spans, SingleCell) {
  SfcCurve c(CurveKind::kHilbert, 3, 4);
  const Box q{{5, 7, 2}, {5, 7, 2}};
  const auto spans = box_spans(c, q);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].lo, spans[0].hi);
  EXPECT_EQ(c.decode(spans[0].lo), (Point{5, 7, 2}));
}

}  // namespace
}  // namespace cods
