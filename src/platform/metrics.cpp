#include "platform/metrics.hpp"

#include <atomic>
#include <sstream>

#include "common/types.hpp"

namespace cods {

namespace {

// Writer threads are assigned shard slots round-robin at first use. The
// slot is process-global (shared by all Metrics instances): what matters
// is that *different* threads land on different shards, not which shard a
// given thread uses in a given registry.
size_t this_thread_slot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

const char* cls_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kInterApp: return "inter-app";
    case TrafficClass::kIntraApp: return "intra-app";
    case TrafficClass::kControl: return "control";
  }
  return "?";
}

}  // namespace

Metrics::Shard& Metrics::my_shard() {
  return shards_[this_thread_slot() % kShards];
}

Metrics::CounterId Metrics::intern(std::string_view name) {
  {
    ReaderLock lock(intern_mutex_);
    const auto it = intern_index_.find(name);
    if (it != intern_index_.end()) return it->second;
  }
  WriterLock lock(intern_mutex_);
  const auto [it, inserted] = intern_index_.try_emplace(
      std::string(name), static_cast<CounterId>(intern_names_.size()));
  if (inserted) intern_names_.emplace_back(name);
  return it->second;
}

std::optional<Metrics::CounterId> Metrics::find_id(
    std::string_view name) const {
  ReaderLock lock(intern_mutex_);
  const auto it = intern_index_.find(name);
  if (it == intern_index_.end()) return std::nullopt;
  return it->second;
}

void Metrics::record(i32 app_id, TrafficClass cls, u64 bytes,
                     bool via_network) {
  Shard& shard = my_shard();
  MutexLock lock(shard.mutex);
  ByteCounters& c = shard.counters[{app_id, cls}];
  if (via_network) {
    c.net_bytes += bytes;
  } else {
    c.shm_bytes += bytes;
  }
  ++c.transfers;
}

void Metrics::add_time(i32 app_id, CounterId phase, double seconds) {
  Shard& shard = my_shard();
  MutexLock lock(shard.mutex);
  shard.times[slot(app_id, phase)] += seconds;
}

void Metrics::add_count(i32 app_id, CounterId name, u64 n) {
  Shard& shard = my_shard();
  MutexLock lock(shard.mutex);
  shard.event_counts[slot(app_id, name)] += n;
}

u64 Metrics::count(i32 app_id, const std::string& name) const {
  const auto id = find_id(name);
  if (!id) return 0;
  const u64 key = slot(app_id, *id);
  u64 total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    const auto it = shard.event_counts.find(key);
    if (it != shard.event_counts.end()) total += it->second;
  }
  return total;
}

u64 Metrics::total_count(const std::string& name) const {
  const auto id = find_id(name);
  if (!id) return 0;
  u64 total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, n] : shard.event_counts) {
      if (static_cast<CounterId>(key & 0xffffffffu) == *id) total += n;
    }
  }
  return total;
}

ByteCounters Metrics::counters(i32 app_id, TrafficClass cls) const {
  ByteCounters total;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    const auto it = shard.counters.find({app_id, cls});
    if (it == shard.counters.end()) continue;
    total.shm_bytes += it->second.shm_bytes;
    total.net_bytes += it->second.net_bytes;
    total.transfers += it->second.transfers;
  }
  return total;
}

double Metrics::time(i32 app_id, const std::string& phase) const {
  const auto id = find_id(phase);
  if (!id) return 0.0;
  const u64 key = slot(app_id, *id);
  double total = 0.0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    const auto it = shard.times.find(key);
    if (it != shard.times.end()) total += it->second;
  }
  return total;
}

ByteCounters Metrics::total(TrafficClass cls) const {
  ByteCounters total;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, c] : shard.counters) {
      if (key.second != cls) continue;
      total.shm_bytes += c.shm_bytes;
      total.net_bytes += c.net_bytes;
      total.transfers += c.transfers;
    }
  }
  return total;
}

u64 Metrics::total_net_bytes() const {
  u64 total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, c] : shard.counters) total += c.net_bytes;
  }
  return total;
}

void Metrics::reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.counters.clear();
    shard.times.clear();
    shard.event_counts.clear();
  }
}

std::string Metrics::report() const {
  // Aggregate into name-sorted maps first: the rendered order must be a
  // function of the ledger's contents alone, never of interning order or
  // of which shard a writer thread happened to land on.
  std::map<std::pair<i32, TrafficClass>, ByteCounters> counters;
  std::map<u64, double> raw_times;
  std::map<u64, u64> raw_events;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, c] : shard.counters) {
      ByteCounters& agg = counters[key];
      agg.shm_bytes += c.shm_bytes;
      agg.net_bytes += c.net_bytes;
      agg.transfers += c.transfers;
    }
    // codslint-allow(determinism): commutative += merge into a sorted map
    for (const auto& [key, t] : shard.times) raw_times[key] += t;
    // codslint-allow(determinism): commutative += merge into a sorted map
    for (const auto& [key, n] : shard.event_counts) raw_events[key] += n;
  }
  // Names are read after the shards: an id observed in a shard was interned
  // before that shard entry was written, so it is present in the table now.
  std::vector<std::string> names;
  {
    ReaderLock lock(intern_mutex_);
    names = intern_names_;
  }
  std::map<std::pair<i32, std::string>, double> times;
  std::map<std::pair<i32, std::string>, u64> events;
  for (const auto& [key, t] : raw_times) {
    const i32 app = static_cast<i32>(static_cast<u32>(key >> 32));
    times[{app, names[static_cast<size_t>(key & 0xffffffffu)]}] += t;
  }
  for (const auto& [key, n] : raw_events) {
    const i32 app = static_cast<i32>(static_cast<u32>(key >> 32));
    events[{app, names[static_cast<size_t>(key & 0xffffffffu)]}] += n;
  }
  std::ostringstream os;
  for (const auto& [key, c] : counters) {
    os << "app " << key.first << " " << cls_name(key.second)
       << ": shm=" << format_bytes(c.shm_bytes)
       << " net=" << format_bytes(c.net_bytes) << " (" << c.transfers
       << " transfers)\n";
  }
  for (const auto& [key, t] : times) {
    os << "app " << key.first << " " << key.second << ": "
       << format_seconds(t) << "\n";
  }
  for (const auto& [key, n] : events) {
    os << "app " << key.first << " " << key.second << ": " << n << "\n";
  }
  return os.str();
}

}  // namespace cods
