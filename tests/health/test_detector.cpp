// Unit tests for the phi-accrual FailureDetector: suspicion accrual, the
// alive -> suspect -> quarantined -> dead state machine, the consecutive-
// miss death gate, and the quarantine -> probation -> readmission path
// (docs/FAULT_MODEL.md "Failure detection").
#include <gtest/gtest.h>

#include <functional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "health/detector.hpp"

namespace cods {
namespace {

constexpr double kPeriod = 1e-3;

DetectorConfig config() {
  DetectorConfig c;
  c.heartbeat_period = kPeriod;
  return c;
}

/// Drives `rounds` heartbeat rounds for one node, each `beat(round)`
/// deciding whether the heartbeat arrived. Returns the final virtual time.
double drive(FailureDetector& d, i32 node, i32 rounds, double start,
             const std::function<bool(i32)>& beat) {
  double now = start;
  for (i32 r = 0; r < rounds; ++r) {
    now += kPeriod;
    const bool arrived = beat(r);
    if (arrived) d.heartbeat(node, now);
    d.evaluate(node, now, !arrived);
  }
  return now;
}

TEST(FailureDetector, PhiGrowsWithSilence) {
  FailureDetector d(config(), 1);
  const double t = drive(d, 0, 8, 0.0, [](i32) { return true; });
  const double fresh = d.phi(0, t);
  const double one_late = d.phi(0, t + kPeriod);
  const double five_late = d.phi(0, t + 5 * kPeriod);
  EXPECT_LT(fresh, one_late);
  EXPECT_LT(one_late, five_late);
  EXPECT_LE(five_late, 40.0);  // the documented clamp
}

TEST(FailureDetector, RegularHeartbeatsStayAlive) {
  FailureDetector d(config(), 2);
  drive(d, 0, 100, 0.0, [](i32) { return true; });
  EXPECT_EQ(d.state(0), NodeHealth::kAlive);
  EXPECT_EQ(d.consecutive_missed(0), 0);
  EXPECT_LT(d.first_missing_time(0), 0.0);
  EXPECT_FALSE(d.unsettled());
}

TEST(FailureDetector, NeverHeardNodeStillAccruesSuspicion) {
  // A node that crashes before its first heartbeat must be detectable:
  // suspicion anchors on the detector's own start (virtual time 0) and the
  // bootstrapped nominal interval.
  FailureDetector d(config(), 1);
  const double t = drive(d, 0, 10, 0.0, [](i32) { return false; });
  EXPECT_EQ(d.state(0), NodeHealth::kDead);
  EXPECT_GT(d.phi(0, t), d.config().phi_dead);
}

TEST(FailureDetector, DeathGatedOnConsecutiveMisses) {
  FailureDetector d(config(), 1);
  double now = drive(d, 0, 8, 0.0, [](i32) { return true; });
  // Silence: phi passes every threshold within a few periods, but death
  // must wait for min_missed_dead consecutive missed rounds.
  i32 rounds_to_death = 0;
  while (d.state(0) != NodeHealth::kDead && rounds_to_death < 64) {
    now += kPeriod;
    d.evaluate(0, now, /*missed=*/true);
    ++rounds_to_death;
  }
  EXPECT_EQ(d.state(0), NodeHealth::kDead);
  EXPECT_GE(rounds_to_death, d.config().min_missed_dead);
  // Latency anchors: first miss to declaration.
  EXPECT_GE(d.first_missing_time(0), 0.0);
  EXPECT_GT(d.declared_dead_time(0), d.first_missing_time(0));
}

TEST(FailureDetector, DeadIsTerminal) {
  FailureDetector d(config(), 1);
  drive(d, 0, 20, 0.0, [](i32) { return false; });
  ASSERT_EQ(d.state(0), NodeHealth::kDead);
  const double declared = d.declared_dead_time(0);
  // A zombie heartbeat must not resurrect the node.
  d.heartbeat(0, 1.0);
  d.evaluate(0, 1.0, /*missed=*/false);
  EXPECT_EQ(d.state(0), NodeHealth::kDead);
  EXPECT_EQ(d.declared_dead_time(0), declared);
}

TEST(FailureDetector, SuspectRecoversOnHeartbeat) {
  // With a jittery heartbeat history the stddev is wide enough that
  // suspicion climbs gradually: the node passes through kSuspect (not
  // straight to quarantine) and a fresh heartbeat clears it back to alive.
  DetectorConfig c = config();
  FailureDetector d(c, 1);
  double now = 0.0;
  for (i32 r = 0; r < 12; ++r) {
    now += (r % 2 == 0) ? 0.5 * kPeriod : 1.5 * kPeriod;  // jitter
    d.heartbeat(0, now);
    d.evaluate(0, now, /*missed=*/false);
  }
  ASSERT_EQ(d.state(0), NodeHealth::kAlive);
  // Grow suspicion round by round until it first leaves kAlive.
  i32 guard = 0;
  while (d.state(0) == NodeHealth::kAlive && guard++ < 64) {
    now += kPeriod;
    d.evaluate(0, now, /*missed=*/true);
  }
  ASSERT_EQ(d.state(0), NodeHealth::kSuspect);
  EXPECT_TRUE(d.unsettled());
  now += kPeriod;
  d.heartbeat(0, now);
  d.evaluate(0, now, /*missed=*/false);
  EXPECT_EQ(d.state(0), NodeHealth::kAlive);
  EXPECT_FALSE(d.unsettled());
}

TEST(FailureDetector, QuarantineProbationReadmission) {
  FailureDetector d(config(), 1);
  double now = drive(d, 0, 8, 0.0, [](i32) { return true; });
  // Go silent long enough to be quarantined (but short of the death gate).
  for (i32 r = 0; r < d.config().min_missed_dead - 1; ++r) {
    now += kPeriod;
    d.evaluate(0, now, /*missed=*/true);
  }
  ASSERT_EQ(d.state(0), NodeHealth::kQuarantined);
  // The node speaks again: probation, then full readmission after
  // probation_rounds on-time beats.
  now += kPeriod;
  d.heartbeat(0, now);
  d.evaluate(0, now, /*missed=*/false);
  ASSERT_EQ(d.state(0), NodeHealth::kProbation);
  // The readmitting tick itself served one on-time round; the node must
  // stay on probation for the remaining probation_rounds - 1 beats.
  for (i32 r = 0; r < d.config().probation_rounds - 1; ++r) {
    EXPECT_TRUE(d.unsettled());
    EXPECT_EQ(d.state(0), NodeHealth::kProbation);
    now += kPeriod;
    d.heartbeat(0, now);
    d.evaluate(0, now, /*missed=*/false);
  }
  EXPECT_EQ(d.state(0), NodeHealth::kAlive);
  EXPECT_FALSE(d.unsettled());
}

TEST(FailureDetector, ProbationRelapseReturnsToQuarantine) {
  FailureDetector d(config(), 1);
  double now = drive(d, 0, 8, 0.0, [](i32) { return true; });
  for (i32 r = 0; r < d.config().min_missed_dead - 1; ++r) {
    now += kPeriod;
    d.evaluate(0, now, /*missed=*/true);
  }
  ASSERT_EQ(d.state(0), NodeHealth::kQuarantined);
  now += kPeriod;
  d.heartbeat(0, now);
  d.evaluate(0, now, /*missed=*/false);
  ASSERT_EQ(d.state(0), NodeHealth::kProbation);
  // Relapse: renewed silence during probation throws the node back to
  // quarantine. The readmission gap widened the interval window, so phi
  // climbs more slowly now — allow a bounded number of missed rounds.
  i32 rounds = 0;
  while (d.state(0) == NodeHealth::kProbation && rounds++ < 32) {
    now += kPeriod;
    d.evaluate(0, now, /*missed=*/true);
  }
  EXPECT_EQ(d.state(0), NodeHealth::kQuarantined);
  EXPECT_LE(rounds, 16);
}

TEST(FailureDetector, NoFalseDeathAtFivePercentLoss) {
  // The false-positive acceptance bound: at p(loss) = 0.05, the default
  // consecutive-miss gate (5) makes a false declaration a ~3e-7 event per
  // window — across 20k rounds of seeded drops, a live node must never be
  // declared dead.
  FailureDetector d(config(), 1);
  Rng rng(20260809);
  double now = 0.0;
  for (i32 r = 0; r < 20000; ++r) {
    now += kPeriod;
    const bool dropped = (rng() % 100) < 5;
    if (!dropped) d.heartbeat(0, now);
    d.evaluate(0, now, dropped);
    ASSERT_NE(d.state(0), NodeHealth::kDead) << "round " << r;
  }
}

TEST(FailureDetector, NodesInAndValidation) {
  FailureDetector d(config(), 3);
  EXPECT_EQ(d.nodes_in(NodeHealth::kAlive), (std::vector<i32>{0, 1, 2}));
  drive(d, 1, 20, 0.0, [](i32) { return false; });
  EXPECT_EQ(d.nodes_in(NodeHealth::kDead), (std::vector<i32>{1}));
  EXPECT_EQ(d.nodes_in(NodeHealth::kAlive), (std::vector<i32>{0, 2}));
  EXPECT_STREQ(to_string(NodeHealth::kQuarantined), "quarantined");

  DetectorConfig bad = config();
  bad.phi_suspect = 9.0;  // out of order with phi_quarantine
  EXPECT_THROW(FailureDetector(bad, 1), Error);
  EXPECT_THROW(FailureDetector(config(), 0), Error);
}

}  // namespace
}  // namespace cods
