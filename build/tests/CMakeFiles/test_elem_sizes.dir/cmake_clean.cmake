file(REMOVE_RECURSE
  "CMakeFiles/test_elem_sizes.dir/core/test_elem_sizes.cpp.o"
  "CMakeFiles/test_elem_sizes.dir/core/test_elem_sizes.cpp.o.d"
  "test_elem_sizes"
  "test_elem_sizes.pdb"
  "test_elem_sizes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elem_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
