# Empty compiler generated dependencies file for test_live_vs_modeled.
# This may be replaced when dependencies are built.
