#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/rng.hpp"
#include "core/cods.hpp"

namespace cods {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : cluster_(ClusterSpec{.num_nodes = 4, .cores_per_node = 2}),
        space_(cluster_, metrics_, Box{{0, 0}, {15, 15}}) {}

  void put(CodsSpace& space, i32 node, const std::string& var, i32 version,
           const Box& box, u64 seed) {
    CodsClient client(space, Endpoint{node * 2, CoreLoc{node, 0}}, 1);
    std::vector<std::byte> data(box_bytes(box, 8));
    fill_pattern(data, box, 8, seed);
    client.put_seq(var, version, box, data, 8);
  }

  Cluster cluster_;
  Metrics metrics_;
  CodsSpace space_;
};

TEST_F(CheckpointTest, SaveLoadRoundTripPreservesData) {
  put(space_, 0, "t", 0, Box{{0, 0}, {7, 7}}, 5);
  put(space_, 1, "t", 0, Box{{8, 0}, {15, 7}}, 5);
  put(space_, 2, "u", 3, Box{{0, 8}, {15, 15}}, 9);

  std::stringstream stream;
  EXPECT_EQ(space_.save_checkpoint(stream), 3u);

  // Restore into a fresh space on the same cluster.
  Metrics metrics2;
  CodsSpace restored(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(restored.load_checkpoint(stream), 3u);
  EXPECT_EQ(restored.stored_bytes(), space_.stored_bytes());
  EXPECT_EQ(restored.versions("t"), (std::vector<i32>{0}));
  EXPECT_EQ(restored.latest_version("u"), 3);

  // Content still verifies through a normal get.
  CodsClient consumer(restored, Endpoint{6, CoreLoc{3, 0}}, 2);
  const Box window{{2, 2}, {13, 5}};
  std::vector<std::byte> out(box_bytes(window, 8));
  consumer.get_seq("t", 0, window, out, 8);
  EXPECT_EQ(verify_pattern(out, window, 8, 5), 0u);
}

TEST_F(CheckpointTest, FileRoundTrip) {
  put(space_, 0, "v", 1, Box{{0, 0}, {7, 7}}, 3);
  const std::string path = ::testing::TempDir() + "/space.ckp";
  EXPECT_EQ(space_.save_checkpoint(path), 1u);
  Metrics metrics2;
  CodsSpace restored(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(restored.load_checkpoint(path), 1u);
  CodsClient consumer(restored, Endpoint{2, CoreLoc{1, 0}}, 2);
  std::vector<std::byte> out(box_bytes(Box{{0, 0}, {7, 7}}, 8));
  consumer.get_seq("v", 1, Box{{0, 0}, {7, 7}}, out, 8);
  EXPECT_EQ(verify_pattern(out, Box{{0, 0}, {7, 7}}, 8, 3), 0u);
}

TEST_F(CheckpointTest, EmptySpaceRoundTrip) {
  std::stringstream stream;
  EXPECT_EQ(space_.save_checkpoint(stream), 0u);
  Metrics metrics2;
  CodsSpace restored(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(restored.load_checkpoint(stream), 0u);
  EXPECT_TRUE(restored.variables().empty());
}

TEST_F(CheckpointTest, ContStateNotCaptured) {
  CodsClient producer(space_, Endpoint{0, CoreLoc{0, 0}}, 1);
  std::vector<std::byte> data(box_bytes(Box{{0, 0}, {3, 3}}, 8));
  producer.put_cont("stream", 0, Box{{0, 0}, {3, 3}}, data, 8);
  std::stringstream stream;
  EXPECT_EQ(space_.save_checkpoint(stream), 0u);
}

TEST_F(CheckpointTest, BadStreamsRejected) {
  {
    std::stringstream garbage("not a checkpoint at all");
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    EXPECT_THROW(fresh.load_checkpoint(garbage), Error);
  }
  {
    // Truncated stream: valid header, missing body.
    put(space_, 0, "v", 0, Box{{0, 0}, {7, 7}}, 1);
    std::stringstream stream;
    space_.save_checkpoint(stream);
    std::string bytes = stream.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    EXPECT_THROW(fresh.load_checkpoint(truncated), Error);
  }
  EXPECT_THROW(space_.load_checkpoint("/no/such/file.ckp"), Error);
}

class CheckpointCorruptionTest : public CheckpointTest {
 protected:
  /// One-object checkpoint of var "v" with a 1-byte name: field offsets in
  /// the serialized stream are fixed and documented in checkpoint.cpp.
  std::string one_object_bytes() {
    put(space_, 0, "v", 0, Box{{0, 0}, {7, 7}}, 1);
    std::stringstream stream;
    space_.save_checkpoint(stream);
    return stream.str();
  }

  /// True iff the corrupted bytes are rejected with a cods::Error (and
  /// nothing worse, like bad_alloc or a crash).
  void expect_rejected(std::string bytes) {
    std::stringstream stream(std::move(bytes));
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    EXPECT_THROW(fresh.load_checkpoint(stream), Error);
  }

  // Offsets for a 1-char variable name (see the format comment):
  // magic[8] count[8] var_len[8] var[1] version[4] node[4] ndim[4]
  // lb[2x8] ub[2x8] data_len[8] data[...] crc32[4]
  static constexpr size_t kMagicOffset = 0;
  static constexpr size_t kVarLenOffset = 16;
  static constexpr size_t kNdimOffset = 33;
  static constexpr size_t kDataLenOffset = 69;
  static constexpr size_t kDataOffset = 77;
};

TEST_F(CheckpointCorruptionTest, BitFlippedMagicRejected) {
  std::string bytes = one_object_bytes();
  bytes[kMagicOffset] ^= 0x01;
  expect_rejected(std::move(bytes));
}

TEST_F(CheckpointCorruptionTest, HugeVarLenRejected) {
  std::string bytes = one_object_bytes();
  const u64 huge = u64{1} << 40;
  std::memcpy(bytes.data() + kVarLenOffset, &huge, sizeof(huge));
  expect_rejected(std::move(bytes));
}

TEST_F(CheckpointCorruptionTest, BadNdimRejected) {
  std::string bytes = one_object_bytes();
  for (const i32 ndim : {0, -1, 1000}) {
    std::string mutated = bytes;
    std::memcpy(mutated.data() + kNdimOffset, &ndim, sizeof(ndim));
    expect_rejected(std::move(mutated));
  }
}

TEST_F(CheckpointCorruptionTest, HugeDataLenRejectedNotAllocated) {
  // The critical hardening case: a corrupted data_len must be rejected by
  // the volume-consistency check *before* any allocation is attempted —
  // a cods::Error, never a std::bad_alloc (or a success on a machine with
  // enough RAM to absorb it).
  std::string bytes = one_object_bytes();
  for (const u64 len : {u64{1} << 62, u64{0}, u64{7}, u64{8192} * 64}) {
    // (box volume is 64 cells: 0, 7 and 8192 bytes/element violate the
    // length bounds; 1<<62 would previously have been a 4 EiB allocation.)
    std::string mutated = bytes;
    std::memcpy(mutated.data() + kDataLenOffset, &len, sizeof(len));
    expect_rejected(std::move(mutated));
  }
}

TEST_F(CheckpointCorruptionTest, TruncationAtEveryLengthRejected) {
  const std::string bytes = one_object_bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream stream(bytes.substr(0, len));
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    EXPECT_THROW(fresh.load_checkpoint(stream), Error) << "length " << len;
  }
}

TEST_F(CheckpointCorruptionTest, SeededFuzzNeverCrashes) {
  // Random single-byte corruptions: every outcome must be either a clean
  // load (the flip hit payload bytes or was otherwise benign) or a
  // cods::Error — never a crash, hang or foreign exception.
  put(space_, 1, "w", 2, Box{{8, 8}, {15, 15}}, 4);
  const std::string bytes = one_object_bytes();
  Rng rng(20240806);
  i32 clean = 0;
  i32 rejected = 0;
  for (i32 round = 0; round < 200; ++round) {
    std::string mutated = bytes;
    const size_t pos = rng() % mutated.size();
    mutated[pos] ^= static_cast<char>(1 + rng() % 255);
    std::stringstream stream(std::move(mutated));
    Metrics metrics2;
    CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
    try {
      fresh.load_checkpoint(stream);
      ++clean;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(clean + rejected, 200);
  EXPECT_GT(rejected, 0);  // header flips must have been caught
}

TEST_F(CheckpointCorruptionTest, CorruptPayloadSkippedNotFatal) {
  // Payload corruption is detected by the per-object CRC footer and the
  // object is *skipped*, not fatal: the load survives and reports the loss
  // through the return count and the "ckpt.corrupt_skipped" metric.
  put(space_, 0, "v", 0, Box{{0, 0}, {7, 7}}, 1);
  put(space_, 1, "w", 0, Box{{8, 8}, {15, 15}}, 4);
  std::stringstream stream;
  ASSERT_EQ(space_.save_checkpoint(stream), 2u);
  std::string bytes = stream.str();
  bytes[kDataOffset] ^= 0x40;  // flip one bit inside the first payload

  std::stringstream corrupted(std::move(bytes));
  Metrics metrics2;
  CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(fresh.load_checkpoint(corrupted), 1u);
  EXPECT_EQ(metrics2.total_count("ckpt.corrupt_skipped"), 1u);
  // The intact object survived and reads back byte-correct.
  const std::vector<std::string> vars = fresh.variables();
  ASSERT_EQ(vars.size(), 1u);
  const std::string survivor = vars.front();
  const Box box = survivor == "w" ? Box{{8, 8}, {15, 15}} : Box{{0, 0}, {7, 7}};
  const u64 seed = survivor == "w" ? 4u : 1u;
  CodsClient consumer(fresh, Endpoint{6, CoreLoc{3, 0}}, 2);
  std::vector<std::byte> out(box_bytes(box, 8));
  consumer.get_seq(survivor, 0, box, out, 8);
  EXPECT_EQ(verify_pattern(out, box, 8, seed), 0u);
}

TEST_F(CheckpointCorruptionTest, CorruptCrcFooterSkipsObject) {
  std::string bytes = one_object_bytes();
  // The footer is the last 4 bytes of a single-object stream.
  bytes[bytes.size() - 2] ^= 0x01;
  std::stringstream stream(std::move(bytes));
  Metrics metrics2;
  CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(fresh.load_checkpoint(stream), 0u);
  EXPECT_EQ(metrics2.total_count("ckpt.corrupt_skipped"), 1u);
  EXPECT_TRUE(fresh.variables().empty());
}

TEST_F(CheckpointCorruptionTest, LegacyV1CheckpointStillLoads) {
  // Forward compatibility: a v1 stream (no CRC footers) is synthesized from
  // the v2 bytes by patching the magic and stripping the footer — it must
  // load without integrity checking.
  std::string bytes = one_object_bytes();
  ASSERT_EQ(bytes[7], '2');
  bytes[7] = '1';
  bytes.resize(bytes.size() - 4);  // drop the single object's CRC footer
  std::stringstream stream(std::move(bytes));
  Metrics metrics2;
  CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(fresh.load_checkpoint(stream), 1u);
  EXPECT_EQ(metrics2.total_count("ckpt.corrupt_skipped"), 0u);
  CodsClient consumer(fresh, Endpoint{6, CoreLoc{3, 0}}, 2);
  const Box box{{0, 0}, {7, 7}};
  std::vector<std::byte> out(box_bytes(box, 8));
  consumer.get_seq("v", 0, box, out, 8);
  EXPECT_EQ(verify_pattern(out, box, 8, 1), 0u);
}

TEST_F(CheckpointCorruptionTest, AllObjectsCorruptLoadsEmpty) {
  std::string bytes = one_object_bytes();
  for (size_t pos = kDataOffset; pos < bytes.size() - 4; pos += 7) {
    bytes[pos] ^= 0x55;  // shred the payload
  }
  std::stringstream stream(std::move(bytes));
  Metrics metrics2;
  CodsSpace fresh(cluster_, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_EQ(fresh.load_checkpoint(stream), 0u);
  EXPECT_TRUE(fresh.variables().empty());
  EXPECT_EQ(fresh.stored_bytes(), 0u);
}

TEST_F(CheckpointTest, DropNodeRestoreLostRoundTrip) {
  // The engine's recovery primitive: node 1's objects are dropped, then
  // selectively restored from a checkpoint onto a surviving node, and the
  // data reads back correctly through the DHT.
  put(space_, 0, "t", 0, Box{{0, 0}, {7, 7}}, 5);
  put(space_, 1, "t", 0, Box{{8, 0}, {15, 7}}, 5);
  put(space_, 1, "u", 0, Box{{0, 8}, {15, 15}}, 6);
  std::stringstream snapshot;
  space_.save_checkpoint(snapshot);
  const u64 before = space_.stored_bytes();

  const u64 node1_bytes = box_bytes(Box{{8, 0}, {15, 7}}, 8) +
                          box_bytes(Box{{0, 8}, {15, 15}}, 8);
  EXPECT_EQ(space_.drop_node(1), node1_bytes);
  EXPECT_EQ(space_.stored_bytes(), before - node1_bytes);
  // The dropped regions are gone from the catalog and the DHT.
  EXPECT_EQ(space_.catalog("u", 0).size(), 0u);
  EXPECT_EQ(space_.catalog("t", 0).size(), 1u);

  // Restore only what is missing, remapped onto node 2.
  const u64 restored = space_.restore_lost(
      snapshot, [](i32) -> std::optional<i32> { return 2; });
  EXPECT_EQ(restored, node1_bytes);
  EXPECT_EQ(space_.stored_bytes(), before);
  // The surviving node-0 object kept its original home.
  for (const DataLocation& loc : space_.catalog("t", 0)) {
    EXPECT_EQ(loc.owner_loc.node, loc.box.lb[0] == 0 ? 0 : 2);
  }

  CodsClient consumer(space_, Endpoint{6, CoreLoc{3, 0}}, 2);
  std::vector<std::byte> out(box_bytes(Box{{0, 0}, {15, 7}}, 8));
  consumer.get_seq("t", 0, Box{{0, 0}, {15, 7}}, out, 8);
  EXPECT_EQ(verify_pattern(out, Box{{0, 0}, {15, 7}}, 8, 5), 0u);
  std::vector<std::byte> out2(box_bytes(Box{{0, 8}, {15, 15}}, 8));
  consumer.get_seq("u", 0, Box{{0, 8}, {15, 15}}, out2, 8);
  EXPECT_EQ(verify_pattern(out2, Box{{0, 8}, {15, 15}}, 8, 6), 0u);
}

TEST_F(CheckpointTest, RestoreLostSkipsLiveObjects) {
  put(space_, 0, "t", 0, Box{{0, 0}, {7, 7}}, 5);
  std::stringstream snapshot;
  space_.save_checkpoint(snapshot);
  // Nothing was lost: restore must be a no-op even with a greedy remap.
  EXPECT_EQ(space_.restore_lost(snapshot,
                                [](i32) -> std::optional<i32> { return 3; }),
            0u);
  ASSERT_EQ(space_.catalog("t", 0).size(), 1u);
  EXPECT_EQ(space_.catalog("t", 0)[0].owner_loc.node, 0);
}

TEST_F(CheckpointTest, SaveToUnwritablePathRejected) {
  put(space_, 0, "v", 0, Box{{0, 0}, {7, 7}}, 1);
  EXPECT_THROW(space_.save_checkpoint("/no/such/dir/space.ckp"), Error);
}

TEST_F(CheckpointTest, SeededRoundTripFuzz) {
  // Randomized save/load round trips: arbitrary object populations must
  // survive serialization byte-exactly.
  Rng rng(99);
  for (i32 round = 0; round < 20; ++round) {
    Metrics m1;
    CodsSpace original(cluster_, m1, Box{{0, 0}, {15, 15}});
    const i32 objects = 1 + static_cast<i32>(rng() % 5);
    for (i32 i = 0; i < objects; ++i) {
      const i64 x0 = static_cast<i64>(rng() % 8);
      const i64 y0 = static_cast<i64>(rng() % 8);
      const Box box{{x0, y0},
                    {x0 + static_cast<i64>(rng() % 8),
                     y0 + static_cast<i64>(rng() % 8)}};
      put(original, static_cast<i32>(rng() % 4), "v" + std::to_string(i),
          static_cast<i32>(rng() % 3), box, rng());
    }
    std::stringstream stream;
    const u64 saved = original.save_checkpoint(stream);
    EXPECT_EQ(saved, static_cast<u64>(objects));
    Metrics m2;
    CodsSpace restored(cluster_, m2, Box{{0, 0}, {15, 15}});
    EXPECT_EQ(restored.load_checkpoint(stream), saved);
    EXPECT_EQ(restored.stored_bytes(), original.stored_bytes());
    EXPECT_EQ(restored.variables(), original.variables());
  }
}

TEST_F(CheckpointTest, NodeOutOfRangeRejected) {
  put(space_, 3, "v", 0, Box{{0, 0}, {7, 7}}, 1);
  std::stringstream stream;
  space_.save_checkpoint(stream);
  // Restore into a smaller cluster that lacks node 3.
  Cluster small(ClusterSpec{.num_nodes = 2, .cores_per_node = 2});
  Metrics metrics2;
  CodsSpace fresh(small, metrics2, Box{{0, 0}, {15, 15}});
  EXPECT_THROW(fresh.load_checkpoint(stream), Error);
}

}  // namespace
}  // namespace cods
