# Empty dependencies file for fig13_sequential_intra.
# This may be replaced when dependencies are built.
