// Invariant oracles over an enacted scenario (wfgen/enact.hpp): checks
// every generated workflow must pass regardless of topology, fault
// overlay or execution mode. The fuzz harness runs these on each
// scenario; the differential comparator (diff_runs) covers cross-mode
// equality, the oracles cover absolute correctness:
//
//   outputs         — zero pattern-verification mismatches
//   byte conservation — ledger spans == transfer journal (exact multiset)
//                     and journal aggregates == metrics == analysis totals
//   stored bytes    — space holds exactly the put_seq bytes the spec
//                     implies, also across recoveries
//   schedule        — every task mapped once, no core double-booked,
//                     node capacity respected, no task left on a node
//                     that was declared dead by its wave
//   virtual clock   — spans well-formed and monotone per track, children
//                     nested within their parents
//   fault accounting— clean runs report clean; faulty runs only ever
//                     declare scheduled crash victims dead
#pragma once

#include <string>
#include <vector>

#include "wfgen/enact.hpp"
#include "wfgen/wfgen.hpp"

namespace cods {
namespace wfgen {

struct OracleReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;  ///< one violation per line, "" when ok
};

/// Runs every oracle; never throws on a violation (collects them all).
OracleReport check_oracles(const ScenarioSpec& spec, const EnactResult& run);

}  // namespace wfgen
}  // namespace cods
