file(REMOVE_RECURSE
  "CMakeFiles/fig12_concurrent_intra.dir/fig12_concurrent_intra.cpp.o"
  "CMakeFiles/fig12_concurrent_intra.dir/fig12_concurrent_intra.cpp.o.d"
  "fig12_concurrent_intra"
  "fig12_concurrent_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_concurrent_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
