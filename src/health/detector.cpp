#include "health/detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cods {

namespace {

/// Upper clamp on phi: beyond this the survival probability underflows
/// double precision anyway, and a finite ceiling keeps comparisons total.
constexpr double kMaxPhi = 40.0;

}  // namespace

const char* to_string(NodeHealth state) {
  switch (state) {
    case NodeHealth::kAlive: return "alive";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kQuarantined: return "quarantined";
    case NodeHealth::kProbation: return "probation";
    case NodeHealth::kDead: return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(DetectorConfig config, i32 num_nodes)
    : config_(config), nodes_(static_cast<size_t>(num_nodes)) {
  CODS_REQUIRE(num_nodes >= 1, "detector needs at least one node");
  CODS_REQUIRE(config_.heartbeat_period > 0.0,
               "heartbeat period must be positive");
  CODS_REQUIRE(config_.window >= 2, "detector window must hold >= 2 samples");
  CODS_REQUIRE(config_.phi_suspect <= config_.phi_quarantine &&
                   config_.phi_quarantine <= config_.phi_dead,
               "phi thresholds must be ordered suspect <= quarantine <= dead");
  CODS_REQUIRE(config_.min_missed_dead >= 1, "death gate needs >= 1 miss");
  // Bootstrap every node with one nominal interval so phi is defined from
  // the very first sweep (a node that never speaks still accrues suspicion
  // against the configured period).
  for (Node& n : nodes_) {
    n.intervals.push_back(config_.heartbeat_period);
  }
}

void FailureDetector::heartbeat(i32 node, double now) {
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.state == NodeHealth::kDead) return;  // death is terminal
  if (n.last_arrival >= 0.0) {
    const double interval = now - n.last_arrival;
    if (static_cast<i32>(n.intervals.size()) < config_.window) {
      n.intervals.push_back(interval);
    } else {
      n.intervals[n.next_slot] = interval;
      n.next_slot = (n.next_slot + 1) % n.intervals.size();
    }
  }
  n.last_arrival = now;
  n.missed = 0;
  n.first_missing = -1.0;
  switch (n.state) {
    case NodeHealth::kAlive:
    case NodeHealth::kProbation:
      break;  // probation is only served by evaluate() ticks
    case NodeHealth::kSuspect:
      n.state = NodeHealth::kAlive;
      break;
    case NodeHealth::kQuarantined:
      // A quarantined node that speaks again is readmitted gradually: it
      // must serve probation before the mapper trusts it with tasks.
      n.state = NodeHealth::kProbation;
      n.probation_left = config_.probation_rounds;
      break;
    case NodeHealth::kDead:
      break;
  }
}

double FailureDetector::phi_of(const Node& n, double now) const {
  // Never heard from: suspicion accrues from the detector's own start
  // (virtual time 0) against the bootstrapped nominal interval, so a node
  // that crashes before its first heartbeat is still detectable.
  const double last_arrival = std::max(n.last_arrival, 0.0);
  double mean = 0.0;
  for (double v : n.intervals) mean += v;
  mean /= static_cast<double>(n.intervals.size());
  double var = 0.0;
  for (double v : n.intervals) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n.intervals.size());
  const double floor = config_.min_stddev_frac * mean;
  const double stddev = std::max(std::sqrt(var), floor);
  const double elapsed = now - last_arrival;
  const double z = (elapsed - mean) / stddev;
  // P(a live node is still silent after `elapsed`) under the Gaussian
  // inter-arrival model; phi is its negated decimal log.
  const double q = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (q <= 0.0) return kMaxPhi;
  return std::min(-std::log10(q), kMaxPhi);
}

double FailureDetector::phi(i32 node, double now) const {
  return phi_of(nodes_[static_cast<size_t>(node)], now);
}

void FailureDetector::evaluate(i32 node, double now, bool missed) {
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.state == NodeHealth::kDead) return;
  if (missed) {
    ++n.missed;
    if (n.first_missing < 0.0) n.first_missing = now;
  }
  const double suspicion = phi_of(n, now);
  switch (n.state) {
    case NodeHealth::kAlive:
      if (suspicion >= config_.phi_quarantine) {
        n.state = NodeHealth::kQuarantined;
      } else if (suspicion >= config_.phi_suspect) {
        n.state = NodeHealth::kSuspect;
      }
      break;
    case NodeHealth::kSuspect:
      if (suspicion >= config_.phi_quarantine) {
        n.state = NodeHealth::kQuarantined;
      } else if (suspicion < config_.phi_suspect) {
        n.state = NodeHealth::kAlive;
      }
      break;
    case NodeHealth::kQuarantined:
      // heartbeat() moves quarantined -> probation; here suspicion can
      // only deepen. Death needs both the phi threshold and a run of
      // truly missed rounds (see DetectorConfig::min_missed_dead).
      if (suspicion >= config_.phi_dead &&
          n.missed >= config_.min_missed_dead) {
        n.state = NodeHealth::kDead;
        n.declared_dead = now;
      }
      break;
    case NodeHealth::kProbation:
      if (suspicion >= config_.phi_quarantine) {
        n.state = NodeHealth::kQuarantined;  // relapsed
      } else if (!missed) {
        if (--n.probation_left <= 0) n.state = NodeHealth::kAlive;
      }
      break;
    case NodeHealth::kDead:
      break;
  }
}

NodeHealth FailureDetector::state(i32 node) const {
  return nodes_[static_cast<size_t>(node)].state;
}

i32 FailureDetector::consecutive_missed(i32 node) const {
  return nodes_[static_cast<size_t>(node)].missed;
}

double FailureDetector::first_missing_time(i32 node) const {
  return nodes_[static_cast<size_t>(node)].first_missing;
}

double FailureDetector::declared_dead_time(i32 node) const {
  return nodes_[static_cast<size_t>(node)].declared_dead;
}

std::vector<i32> FailureDetector::nodes_in(NodeHealth state) const {
  std::vector<i32> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == state) out.push_back(static_cast<i32>(i));
  }
  return out;
}

bool FailureDetector::unsettled() const {
  return std::any_of(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return n.state == NodeHealth::kSuspect ||
           n.state == NodeHealth::kQuarantined ||
           n.state == NodeHealth::kProbation;
  });
}

}  // namespace cods
