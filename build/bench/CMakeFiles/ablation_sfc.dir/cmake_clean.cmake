file(REMOVE_RECURSE
  "CMakeFiles/ablation_sfc.dir/ablation_sfc.cpp.o"
  "CMakeFiles/ablation_sfc.dir/ablation_sfc.cpp.o.d"
  "ablation_sfc"
  "ablation_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
