#include "health/monitor.hpp"

#include "trace/trace.hpp"

namespace cods {

HealthMonitor::HealthMonitor(HealthConfig config, FaultInjector& injector,
                             HybridDart& dart, i32 num_nodes)
    : config_(config),
      injector_(&injector),
      dart_(&dart),
      detector_(config.detector, num_nodes),
      confirmed_(static_cast<size_t>(num_nodes), false),
      heartbeats_id_(dart.metrics().intern("health.heartbeats")),
      dropped_id_(dart.metrics().intern("health.heartbeats_dropped")),
      rounds_id_(dart.metrics().intern("health.detection_rounds")),
      latency_id_(dart.metrics().intern("health.detection_latency")) {
  CODS_REQUIRE(config_.max_detection_rounds >= 1,
               "detection needs a round budget of at least 1");
}

void HealthMonitor::sweep_round() {
  const double period = config_.detector.heartbeat_period;
  now_ += period;
  // The server-side collection point: heartbeats address node 0, core 0
  // (where the lookup service master lives), like any other control ping.
  const CoreLoc sink{0, 0};
  Metrics& metrics = dart_->metrics();
  for (i32 node = 0; node < detector_.num_nodes(); ++node) {
    if (confirmed_[static_cast<size_t>(node)]) continue;
    const HeartbeatFate fate = injector_->heartbeat_fate(node, round_);
    if (fate.crashed) {
      detector_.evaluate(node, now_, /*missed=*/true);
      continue;
    }
    // The heartbeat was emitted: its bytes crossed the fabric whether or
    // not it was delivered, so both outcomes are accounted (the same
    // stance admit_op takes for failed transfer attempts).
    const CoreLoc src{node, 0};
    const u64 bytes = static_cast<u64>(dart_->cost_model().params().rpc_bytes);
    const double time = dart_->cost_model().rpc_time(src, sink, 1);
    dart_->record(/*app_id=*/0, TrafficClass::kControl, src, sink, bytes,
                  time);
    metrics.add_count(0, heartbeats_id_);
    if (fate.dropped) {
      metrics.add_count(0, dropped_id_);
      detector_.evaluate(node, now_, /*missed=*/true);
      continue;
    }
    detector_.heartbeat(node, now_ + fate.delay_frac * period);
    detector_.evaluate(node, now_, /*missed=*/false);
  }
  ++round_;
}

std::vector<i32> HealthMonitor::run_detection() {
  ScopedSpan span(SpanCategory::kHealth, 0,
                  static_cast<u32>(detector_.num_nodes()));
  const double start = now_;
  std::vector<i32> newly;
  i32 rounds = 0;
  last_latency_ = 0.0;
  while (rounds < config_.max_detection_rounds) {
    sweep_round();
    ++rounds;
    for (i32 node = 0; node < detector_.num_nodes(); ++node) {
      if (confirmed_[static_cast<size_t>(node)] ||
          detector_.state(node) != NodeHealth::kDead) {
        continue;
      }
      confirmed_[static_cast<size_t>(node)] = true;
      newly.push_back(node);
      // Feed the verdict back so the transport fails fast on this node
      // from now on. Idempotent for scheduled crashes (already dead in
      // the injector); for a detector-only declaration it records the
      // administrative kill in the replay trace.
      injector_->declare_dead(node);
      const double latency =
          detector_.declared_dead_time(node) -
          detector_.first_missing_time(node);
      last_latency_ = std::max(last_latency_, latency);
      dart_->metrics().add_time(0, latency_id_, latency);
    }
    // Resolved: every node is settled (alive or dead), nothing sits in
    // between, and nobody is silently missing heartbeats (a freshly
    // crashed node spends its first rounds below the suspect threshold —
    // still nominally kAlive — so the miss counter, not just the state,
    // must clear before the pass may stop).
    bool pending = detector_.unsettled();
    for (i32 node = 0; !pending && node < detector_.num_nodes(); ++node) {
      pending = !confirmed_[static_cast<size_t>(node)] &&
                detector_.consecutive_missed(node) > 0;
    }
    if (!pending) break;
  }
  last_rounds_ = rounds;
  dart_->metrics().add_count(0, rounds_id_, static_cast<u64>(rounds));
  span.close(now_ - start);
  return newly;
}

void HealthMonitor::settle() {
  if (!detector_.unsettled()) return;
  ScopedSpan span(SpanCategory::kHealth, 0, 0);
  const double start = now_;
  for (i32 r = 0; r < config_.max_detection_rounds && detector_.unsettled();
       ++r) {
    sweep_round();
  }
  span.close(now_ - start);
}

std::vector<i32> HealthMonitor::confirmed_dead() const {
  std::vector<i32> out;
  for (size_t i = 0; i < confirmed_.size(); ++i) {
    if (confirmed_[i]) out.push_back(static_cast<i32>(i));
  }
  return out;
}

std::vector<i32> HealthMonitor::untrusted() const {
  std::vector<i32> out;
  for (i32 node = 0; node < detector_.num_nodes(); ++node) {
    const NodeHealth s = detector_.state(node);
    if (s == NodeHealth::kQuarantined || s == NodeHealth::kProbation) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace cods
