file(REMOVE_RECURSE
  "libcods_core.a"
)
