#include "core/cods.hpp"

#include <algorithm>
#include <set>

#include "health/task_clock.hpp"
#include "trace/trace.hpp"

namespace cods {

namespace {

bool point_less(const Point& a, const Point& b) {
  for (int d = 0; d < a.nd && d < b.nd; ++d) {
    if (a[d] != b[d]) return a[d] < b[d];
  }
  return a.nd < b.nd;
}

bool box_less(const Box& a, const Box& b) {
  if (!(a.lb == b.lb)) return point_less(a.lb, b.lb);
  return point_less(a.ub, b.ub);
}

u64 fnv1a(const void* data, size_t len, u64 seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  u64 h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

SfcCurve make_curve(const Box& domain, CurveKind kind) {
  i64 max_extent = 1;
  for (int d = 0; d < domain.ndim(); ++d) {
    max_extent = std::max(max_extent, domain.extent(d));
  }
  return SfcCurve(kind, domain.ndim(), SfcCurve::bits_for_extent(max_extent));
}

}  // namespace

CodsSpace::CodsSpace(const Cluster& cluster, Metrics& metrics,
                     const Box& domain, CodsConfig config)
    : cluster_(&cluster),
      domain_(domain),
      dart_(cluster, metrics, config.cost),
      dht_(cluster, make_curve(domain, config.curve),
           config.dht_granularity_log2) {
  CODS_REQUIRE(domain.valid(), "domain must be non-empty");
  Point origin = Point::zeros(domain.ndim());
  CODS_REQUIRE(domain.lb == origin, "domain must be anchored at the origin");
}

u64 CodsSpace::window_key(const std::string& var, i32 version,
                          const Box& box) {
  u64 h = fnv1a(var.data(), var.size());
  h = fnv1a(&version, sizeof(version), h);
  for (int d = 0; d < box.ndim(); ++d) {
    const i64 lo = box.lb[d];
    const i64 hi = box.ub[d];
    h = fnv1a(&lo, sizeof(lo), h);
    h = fnv1a(&hi, sizeof(hi), h);
  }
  return h;
}

DataLocation CodsSpace::store_object(i32 node, const std::string& var,
                                     i32 version, const Box& box,
                                     std::vector<std::byte> data,
                                     bool* stored) {
  const i32 client = storage_client(node);
  const u64 key = window_key(var, version, box);
  if (stored != nullptr) *stored = true;
  std::span<std::byte> window;
  std::optional<i32> replaced_client;
  {
    MutexLock lock(store_mutex_);
    auto& index = store_index_[{var, version}];
    const auto existing = store_by_key_.find(key);
    if (existing != store_by_key_.end()) {
      const i32 owner = existing->second;
      if (speculation_.load() && !reexec_.load()) {
        // First completion wins: a speculative re-put of an object that
        // already landed keeps the original (wherever it lives). The
        // caller's traffic was already accounted; only the store and the
        // DHT registration are skipped.
        if (stored != nullptr) *stored = false;
        const auto it = store_.find({owner, key});
        CODS_CHECK(it != store_.end(), "store index out of sync");
        DataLocation kept;
        kept.box = box;
        kept.owner_client = owner;
        kept.owner_loc = CoreLoc{it->second.node, 0};
        kept.window_key = key;
        return kept;
      }
      // Same (var, version, box) again: rejected, unless the engine is
      // re-executing tasks after a failure — then the re-put replaces the
      // object (possibly on a different node).
      CODS_CHECK(reexec_.load(),
                 "object already stored for this (var, version, box)");
      replaced_client = owner;
      const auto it = store_.find({owner, key});
      if (it != store_.end()) stored_total_ -= it->second.data.size();
      store_.erase({owner, key});
      store_by_key_.erase(existing);
      // The ordered entry list is only walked on this (rare) re-execution
      // replacement path; publication order of the survivors is kept.
      std::erase_if(index,
                    [&](const std::pair<i32, u64>& e) { return e.second == key; });
    }
    // Shed-load watermark: recovery re-puts are exempt (restoring lost
    // objects must never be refused for the memory they already held).
    const u64 hard = hard_watermark_.load(std::memory_order_relaxed);
    if (hard > 0 && !reexec_.load() && stored_total_ + data.size() > hard) {
      const u64 held = stored_total_;
      lock.unlock();
      throw OverloadError(data.size(), held, hard);
    }
    stored_total_ += data.size();
    auto [it, inserted] =
        store_.insert({{client, key}, StoredObject{node, box, std::move(data)}});
    CODS_CHECK(inserted, "object already stored for this (var, version, box)");
    index.push_back({client, key});
    store_by_key_.emplace(key, client);
    window = std::span(it->second.data);
  }
  if (replaced_client) dart_.withdraw(*replaced_client, key);
  dart_.expose(client, key, window);
  note_version(var, version);
  DataLocation loc;
  loc.box = box;
  loc.owner_client = client;
  loc.owner_loc = CoreLoc{node, 0};
  loc.window_key = key;
  return loc;
}

void CodsSpace::post_cont(const std::string& var, i32 version, const Box& box,
                          std::vector<std::byte> data,
                          const Endpoint& producer) {
  const u64 key = window_key(var, version, box);
  {
    MutexLock lock(cont_mutex_);
    auto& records = cont_[{var, version}];
    const auto existing =
        std::find_if(records.begin(), records.end(),
                     [&](const ContRecord& r) { return r.window_key == key; });
    std::optional<Endpoint> replaced;
    if (existing != records.end()) {
      // First completion wins under speculation: the original publication
      // stays authoritative and the duplicate is dropped on the floor.
      if (speculation_.load() && !reexec_.load()) return;
      // Re-publication of the same region: only valid while the engine is
      // re-executing a failed wave (the producer may have moved nodes).
      CODS_CHECK(reexec_.load(),
                 "region already published for this (var, version, box)");
      replaced = existing->producer;
      records.erase(existing);
    }
    records.push_back(ContRecord{box, producer, key, std::move(data)});
    // Expose before releasing cont_mutex_: the record is visible to
    // wait_cont_coverage the moment it is pushed, and a consumer woken by
    // an earlier producer's notify may observe full coverage and pull this
    // window before an expose outside the lock lands. (retire() already
    // nests the dart mutex under cont_mutex_, so the ordering is fixed.)
    if (replaced) dart_.withdraw(replaced->client_id, key);
    dart_.expose(producer.client_id, key, std::span(records.back().data));
  }
  note_version(var, version);
  cont_cv_.notify_all();
}

std::vector<CodsSpace::ContEntry> CodsSpace::wait_cont_coverage(
    const std::string& var, i32 version, const Box& region,
    std::optional<std::chrono::seconds> timeout) {
  MutexLock lock(cont_mutex_);
  const WaitDeadline deadline(timeout.value_or(op_timeout()));
  for (;;) {
    const auto it = cont_.find({var, version});
    if (it != cont_.end()) {
      u64 covered = 0;
      std::vector<ContEntry> entries;
      for (const ContRecord& r : it->second) {
        const auto overlap = intersect(r.box, region);
        if (!overlap) continue;
        covered += overlap->volume();
        entries.push_back(ContEntry{r.box, r.producer, r.window_key});
      }
      // Producers own disjoint regions, so coverage sums without overlap.
      if (covered >= region.volume()) {
        // Entries accumulate in producer-arrival order, which depends on
        // thread scheduling; return them in a canonical order so pull
        // schedules (and the trace/ledger streams built from them) are
        // deterministic.
        std::sort(entries.begin(), entries.end(),
                  [](const ContEntry& a, const ContEntry& b) {
                    return box_less(a.box, b.box);
                  });
        return entries;
      }
    }
    if (cont_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      fail("get_cont timed out waiting for producers to cover " +
           region.to_string() + " of '" + var + "' v" +
           std::to_string(version));
    }
  }
}

void CodsSpace::retire(const std::string& var, i32 version) {
  {
    MutexLock lock(store_mutex_);
    const auto it = store_index_.find({var, version});
    if (it != store_index_.end()) {
      for (const auto& [client, key] : it->second) {
        dart_.withdraw(client, key);
        store_by_key_.erase(key);
        const auto obj = store_.find({client, key});
        if (obj != store_.end()) {
          stored_total_ -= obj->second.data.size();
          store_.erase(obj);
        }
      }
      store_index_.erase(it);
    }
  }
  {
    MutexLock lock(cont_mutex_);
    const auto it = cont_.find({var, version});
    if (it != cont_.end()) {
      for (const ContRecord& r : it->second) {
        dart_.withdraw(r.producer.client_id, r.window_key);
      }
      cont_.erase(it);
    }
  }
  dht_.retire(var, version);
}

u64 CodsSpace::stored_bytes() const {
  MutexLock lock(store_mutex_);
  u64 total = 0;
  for (const auto& [key, object] : store_) total += object.data.size();
  return total;
}

void CodsSpace::set_watermarks(u64 soft, u64 hard) {
  CODS_REQUIRE(hard == 0 || soft <= hard,
               "soft watermark must not exceed hard watermark");
  soft_watermark_.store(soft, std::memory_order_relaxed);
  hard_watermark_.store(hard, std::memory_order_relaxed);
}

double CodsSpace::backpressure_penalty(u64 incoming_bytes) const {
  const u64 soft = soft_watermark_.load(std::memory_order_relaxed);
  if (soft == 0) return 0.0;
  u64 held;
  {
    MutexLock lock(store_mutex_);
    held = stored_total_;
  }
  const u64 after = held + incoming_bytes;
  if (after <= soft) return 0.0;
  // Penalty grows linearly with overshoot past the soft watermark, in
  // units of the shared-memory latency per soft-watermark's worth of
  // overshoot — smooth backpressure, deterministic, no wall clocks.
  const double unit = dart_.cost_model().params().shm_latency;
  return unit * (static_cast<double>(after - soft) /
                 static_cast<double>(soft));
}

void CodsSpace::note_version(const std::string& var, i32 version) {
  {
    MutexLock lock(meta_mutex_);
    auto [it, inserted] = latest_.insert({var, version});
    if (!inserted && it->second < version) it->second = version;
  }
  meta_cv_.notify_all();
}

i32 CodsSpace::latest_version(const std::string& var) const {
  MutexLock lock(meta_mutex_);
  const auto it = latest_.find(var);
  return it == latest_.end() ? -1 : it->second;
}

void CodsSpace::wait_version(const std::string& var, i32 version,
                             std::optional<std::chrono::seconds> timeout)
    const {
  MutexLock lock(meta_mutex_);
  const WaitDeadline deadline(timeout.value_or(op_timeout()));
  for (;;) {
    const auto it = latest_.find(var);
    if (it != latest_.end() && it->second >= version) return;
    if (meta_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      fail("wait_version timed out for '" + var + "' v" +
           std::to_string(version));
    }
  }
}

std::vector<std::string> CodsSpace::variables() const {
  std::set<std::string> names;
  {
    MutexLock lock(store_mutex_);
    for (const auto& [key, entries] : store_index_) {
      if (!entries.empty()) names.insert(key.first);
    }
  }
  {
    MutexLock lock(cont_mutex_);
    for (const auto& [key, records] : cont_) {
      if (!records.empty()) names.insert(key.first);
    }
  }
  return {names.begin(), names.end()};
}

std::vector<i32> CodsSpace::versions(const std::string& var) const {
  std::set<i32> out;
  {
    MutexLock lock(store_mutex_);
    for (const auto& [key, entries] : store_index_) {
      if (key.first == var && !entries.empty()) out.insert(key.second);
    }
  }
  {
    MutexLock lock(cont_mutex_);
    for (const auto& [key, records] : cont_) {
      if (key.first == var && !records.empty()) out.insert(key.second);
    }
  }
  return {out.begin(), out.end()};
}

std::vector<DataLocation> CodsSpace::catalog(const std::string& var,
                                             i32 version) const {
  std::vector<DataLocation> out;
  {
    MutexLock lock(store_mutex_);
    const auto it = store_index_.find({var, version});
    if (it != store_index_.end()) {
      for (const auto& [client, key] : it->second) {
        const auto obj = store_.find({client, key});
        if (obj == store_.end()) continue;
        DataLocation loc;
        loc.box = obj->second.box;
        loc.owner_client = client;
        loc.owner_loc = CoreLoc{obj->second.node, 0};
        loc.window_key = key;
        out.push_back(loc);
      }
    }
  }
  {
    MutexLock lock(cont_mutex_);
    const auto it = cont_.find({var, version});
    if (it != cont_.end()) {
      for (const ContRecord& r : it->second) {
        DataLocation loc;
        loc.box = r.box;
        loc.owner_client = r.producer.client_id;
        loc.owner_loc = r.producer.loc;
        loc.window_key = r.window_key;
        out.push_back(loc);
      }
    }
  }
  return out;
}

u64 CodsSpace::drop_node(i32 node) {
  u64 lost = 0;
  std::vector<std::pair<i32, u64>> windows;  // withdrawn outside the locks
  {
    MutexLock lock(store_mutex_);
    for (auto it = store_.begin(); it != store_.end();) {
      if (it->second.node == node) {
        lost += it->second.data.size();
        stored_total_ -= it->second.data.size();
        windows.push_back(it->first);
        store_by_key_.erase(it->first.second);
        it = store_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [key, entries] : store_index_) {
      std::erase_if(entries, [&](const std::pair<i32, u64>& e) {
        return !store_.contains(e);
      });
    }
  }
  {
    MutexLock lock(cont_mutex_);
    for (auto& [key, records] : cont_) {
      for (auto it = records.begin(); it != records.end();) {
        if (it->producer.loc.node == node) {
          lost += it->data.size();
          windows.push_back({it->producer.client_id, it->window_key});
          it = records.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (const auto& [client, key] : windows) dart_.withdraw(client, key);
  dht_.drop_node_locations(node);
  return lost;
}

i32 CodsSpace::retire_older_than(const std::string& var, i32 keep) {
  CODS_REQUIRE(keep >= 1, "must keep at least one version");
  const i32 latest = latest_version(var);
  if (latest < 0) return 0;
  i32 retired = 0;
  for (i32 version : versions(var)) {
    if (version <= latest - keep) {
      retire(var, version);
      ++retired;
    }
  }
  return retired;
}

// ---------------------------------------------------------------------------
// CodsClient
// ---------------------------------------------------------------------------

PutResult CodsClient::put_seq(const std::string& var, i32 version,
                              const Box& box, std::span<const std::byte> data,
                              u64 elem_size) {
  CODS_REQUIRE(data.size() == box_bytes(box, elem_size),
               "data size does not match box");
  ScopedSpan span(SpanCategory::kPut, data.size(), /*detail=*/1);
  const i32 node = self_.loc.node;
  // Graceful degradation: above the soft watermark the space slows the
  // producer down instead of refusing it (docs/FAULT_MODEL.md).
  const double backpressure = space_->backpressure_penalty(data.size());
  bool stored = true;
  const DataLocation loc = space_->store_object(
      node, var, version, box, {data.begin(), data.end()}, &stored);
  // The store lands on the producer's own node: a shared-memory movement,
  // accounted through the dart funnel so the journal and trace see it too.
  // A speculative put whose twin already landed still pays this movement
  // (the bytes crossed cores before the duplicate was detected).
  double time = backpressure +
                space_->dart().cost_model().flow_time(
                    Flow{self_.loc, loc.owner_loc, data.size()});
  space_->dart().record(app_id_, TrafficClass::kInterApp, self_.loc,
                        loc.owner_loc, data.size(), time);
  TaskClock::advance(time);  // rpc() below advances its own share
  if (backpressure > 0.0) {
    space_->dart().metrics().add_time(
        app_id_, space_->dart().metrics().intern("health.backpressure"),
        backpressure);
  }
  // Register with every responsible DHT core (control RPCs).
  const auto nodes = space_->dht().owner_nodes(box);
  for (i32 dht_node : nodes) {
    time += space_->dart().rpc(self_, space_->storage_endpoint(dht_node));
  }
  // First completion won: the original object stays authoritative, so the
  // DHT already points at it — re-inserting would duplicate the location.
  if (stored) space_->dht().insert(var, version, loc);
  PutResult result;
  result.model_time = time;
  result.bytes = data.size();
  result.dht_cores = static_cast<i32>(nodes.size());
  result.stored = stored;
  span.close(result.model_time);
  return result;
}

PutResult CodsClient::put_cont(const std::string& var, i32 version,
                               const Box& box,
                               std::span<const std::byte> data,
                               u64 elem_size) {
  CODS_REQUIRE(data.size() == box_bytes(box, elem_size),
               "data size does not match box");
  ScopedSpan span(SpanCategory::kPut, data.size(), /*detail=*/2);
  space_->post_cont(var, version, box, {data.begin(), data.end()}, self_);
  PutResult result;
  // Publication is asynchronous registration: no data crosses cores until
  // consumers pull, so only a negligible local cost is modelled.
  result.model_time = space_->dart().cost_model().params().shm_latency;
  result.bytes = data.size();
  span.close(result.model_time);
  return result;
}

std::string CodsClient::cache_key(const std::string& var, const Box& region,
                                  u64 elem_size) const {
  return var + "|" + region.to_string() + "|" + std::to_string(elem_size);
}

GetResult CodsClient::pull_schedule(const Schedule& schedule,
                                    const std::string& var, i32 version,
                                    const Box& region, std::span<std::byte> out,
                                    u64 elem_size) {
  std::vector<PullOp> ops;
  ops.reserve(schedule.entries.size());
  for (const ScheduleEntry& entry : schedule.entries) {
    PullOp op;
    op.local = self_;
    op.remote = entry.source;
    op.key = CodsSpace::window_key(var, version, entry.source_box);
    op.bytes = box_bytes(entry.overlap, elem_size);
    op.app_id = app_id_;
    op.cls = TrafficClass::kInterApp;
    const Box source_box = entry.source_box;
    const Box overlap = entry.overlap;
    op.copy = [out, source_box, overlap, region,
               elem_size](std::span<const std::byte> window) {
      copy_box_region(window, source_box, out, region, overlap, elem_size);
    };
    ops.push_back(std::move(op));
  }
  const double time = space_->dart().pull(ops);
  GetResult result;
  result.model_time = time;
  for (const PullOp& op : ops) result.bytes += op.bytes;
  result.sources = static_cast<i32>(ops.size());
  return result;
}

GetResult CodsClient::get_seq(const std::string& var, i32 version,
                              const Box& region, std::span<std::byte> out,
                              u64 elem_size) {
  CODS_REQUIRE(out.size() >= box_bytes(region, elem_size),
               "output buffer too small");
  ScopedSpan span(SpanCategory::kGet, box_bytes(region, elem_size),
                  /*detail=*/1);
  const std::string key = cache_key(var, region, elem_size);

  // Schedule-cache fast path: reuse the source list, recompute this
  // version's window keys, and verify the windows still exist.
  if (cache_enabled_) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      bool usable = !it->second.entries.empty();
      for (const ScheduleEntry& entry : it->second.entries) {
        if (!space_->dart().has_window(
                entry.source.client_id,
                CodsSpace::window_key(var, version, entry.source_box))) {
          usable = false;
          break;
        }
      }
      if (usable) {
        GetResult result =
            pull_schedule(it->second, var, version, region, out, elem_size);
        result.cache_hit = true;
        span.close(result.model_time);
        return result;
      }
      cache_.erase(it);
    }
  }

  // DHT lookup cache: re-reads of the same (var, version, region) skip the
  // query RPCs entirely. The epoch is read *before* querying, so an entry
  // only validates while no put/retire/drop has touched the key since.
  Metrics& metrics = space_->dart().metrics();
  const std::string lookup_key = key + "#v" + std::to_string(version);
  const u64 epoch = space_->dht().epoch(var, version);
  LookupResult lookup;
  bool lookup_hit = false;
  if (lookup_cache_enabled_) {
    const auto it = lookup_cache_.find(lookup_key);
    if (it != lookup_cache_.end()) {
      if (it->second.epoch == epoch) {
        lookup = it->second.lookup;
        lookup_hit = true;
      } else {
        lookup_cache_.erase(it);
      }
    }
  }
  double query_time = 0.0;
  if (!lookup_hit) {
    lookup = space_->dht().query(var, version, region);
    for (i32 node : lookup.dht_nodes) {
      query_time += space_->dart().rpc(self_, space_->storage_endpoint(node));
    }
    if (lookup_cache_enabled_) {
      if (lookup_cache_.size() >= kMaxLookupCacheEntries) {
        lookup_cache_.clear();
      }
      lookup_cache_[lookup_key] = CachedLookup{lookup, epoch};
    }
  }
  if (lookup_cache_enabled_) {
    metrics.add_count(app_id_, lookup_hit ? lookup_hit_id_ : lookup_miss_id_);
  }

  Schedule schedule;
  u64 covered = 0;
  for (const DataLocation& loc : lookup.locations) {
    const auto overlap = intersect(loc.box, region);
    if (!overlap) continue;
    covered += overlap->volume();
    schedule.entries.push_back(ScheduleEntry{
        Endpoint{loc.owner_client, loc.owner_loc}, loc.box, *overlap});
  }
  CODS_CHECK(covered >= region.volume(),
             "stored data does not cover the requested region " +
                 region.to_string() + " of '" + var + "' v" +
                 std::to_string(version));
  // DHT location order depends on concurrent producer interleaving; pull
  // in a canonical order so flows, spans and the journal are
  // deterministic (the modelled batch time is order-independent, but its
  // floating-point evaluation is not).
  std::sort(schedule.entries.begin(), schedule.entries.end(),
            [](const ScheduleEntry& a, const ScheduleEntry& b) {
              return box_less(a.overlap, b.overlap);
            });

  GetResult result = pull_schedule(schedule, var, version, region, out,
                                   elem_size);
  result.model_time += query_time;
  result.dht_cores =
      lookup_hit ? 0 : static_cast<i32>(lookup.dht_nodes.size());
  result.lookup_cache_hit = lookup_hit;
  if (cache_enabled_) cache_[key] = std::move(schedule);
  span.close(result.model_time);
  return result;
}

GetResult CodsClient::get_cont(const std::string& var, i32 version,
                               const Box& region, std::span<std::byte> out,
                               u64 elem_size) {
  CODS_REQUIRE(out.size() >= box_bytes(region, elem_size),
               "output buffer too small");
  ScopedSpan span(SpanCategory::kGet, box_bytes(region, elem_size),
                  /*detail=*/2);
  const std::string key = cache_key(var, region, elem_size);

  if (cache_enabled_) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Concurrent coupling: producers may not have published this version
      // yet; wait for coverage before pulling through the cached schedule.
      space_->wait_cont_coverage(var, version, region);
      bool usable = !it->second.entries.empty();
      for (const ScheduleEntry& entry : it->second.entries) {
        if (!space_->dart().has_window(
                entry.source.client_id,
                CodsSpace::window_key(var, version, entry.source_box))) {
          usable = false;
          break;
        }
      }
      if (usable) {
        GetResult result =
            pull_schedule(it->second, var, version, region, out, elem_size);
        result.cache_hit = true;
        span.close(result.model_time);
        return result;
      }
      cache_.erase(it);
    }
  }

  const auto entries = space_->wait_cont_coverage(var, version, region);
  Schedule schedule;
  for (const auto& entry : entries) {
    const auto overlap = intersect(entry.box, region);
    if (!overlap) continue;
    schedule.entries.push_back(
        ScheduleEntry{entry.producer, entry.box, *overlap});
  }
  GetResult result =
      pull_schedule(schedule, var, version, region, out, elem_size);
  if (cache_enabled_) cache_[key] = std::move(schedule);
  span.close(result.model_time);
  return result;
}

}  // namespace cods
