// Mailbox contention tests: many producers and consumers on one mailbox,
// exercising the annotated Mutex/CondVar pair under load (TSan CI subset).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"

namespace cods {
namespace {

Message make_message(i32 src, i64 tag, int value) {
  Message m;
  m.src_global = src;
  m.comm_tag = tag;
  m.payload.resize(sizeof(int));
  std::memcpy(m.payload.data(), &value, sizeof(int));
  return m;
}

int value_of(const Message& m) {
  int value = 0;
  std::memcpy(&value, m.payload.data(), sizeof(int));
  return value;
}

TEST(MailboxContention, ManyProducersManyConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  Mailbox box;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(make_message(p, 1, p * kPerProducer + i));
      }
    });
  }

  std::atomic<int> consumed{0};
  std::vector<std::set<int>> seen(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (true) {
        const int n = consumed.fetch_add(1);
        if (n >= kProducers * kPerProducer) break;
        const Message m =
            box.pop(kAnySource, 1, std::chrono::seconds(30));
        seen[c].insert(value_of(m));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  // Every message delivered exactly once across all consumers.
  std::set<int> all;
  size_t total = 0;
  for (const auto& s : seen) {
    total += s.size();
    all.insert(s.begin(), s.end());
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers * kPerProducer));
  EXPECT_EQ(all.size(), static_cast<size_t>(kProducers * kPerProducer));
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxContention, SelectiveMatchingUnderLoadIsFifoPerSource) {
  Mailbox box;
  constexpr int kPerSource = 300;
  std::vector<std::thread> producers;
  for (int src = 0; src < 3; ++src) {
    producers.emplace_back([&box, src] {
      for (int i = 0; i < kPerSource; ++i) {
        box.push(make_message(src, 7, i));
      }
    });
  }

  // One consumer per source: matched pops must preserve per-source FIFO
  // even while other sources' messages interleave in the queue.
  std::vector<std::thread> consumers;
  for (int src = 0; src < 3; ++src) {
    consumers.emplace_back([&box, src] {
      for (int i = 0; i < kPerSource; ++i) {
        const Message m = box.pop(src, 7, std::chrono::seconds(30));
        EXPECT_EQ(m.src_global, src);
        EXPECT_EQ(value_of(m), i);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxContention, ConcurrentTryPopDrainsExactlyOnce) {
  Mailbox box;
  constexpr int kMessages = 1000;
  std::atomic<int> delivered{0};

  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) box.push(make_message(0, 3, i));
  });
  std::thread poller([&] {
    while (delivered.load() < kMessages) {
      if (box.try_pop(kAnySource, 3).has_value()) delivered.fetch_add(1);
    }
  });
  std::thread blocker([&] {
    while (delivered.load() < kMessages) {
      const auto got = box.try_pop(kAnySource, 3);
      if (got.has_value()) {
        delivered.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  poller.join();
  blocker.join();
  EXPECT_EQ(delivered.load(), kMessages);
  EXPECT_EQ(box.size(), 0u);
}

}  // namespace
}  // namespace cods
