// Coherence of the client-side DHT lookup cache (docs/PERF.md): cached
// lookups must be invisible — every get returns exactly the bytes an
// uncached client would see, across puts, re-puts, retires and node
// drops. The property test drives randomized interleavings of all four
// mutation kinds against a caching and a non-caching client and demands
// bit-identical outputs.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/cods.hpp"
#include "support/seed_report.hpp"

namespace cods {
namespace {

class DhtCacheTest : public ::testing::Test {
 protected:
  DhtCacheTest()
      : cluster_(ClusterSpec{.num_nodes = 4, .cores_per_node = 4}),
        space_(cluster_, metrics_, Box{{0, 0}, {15, 15}}) {}

  CodsClient client(i32 node, i32 core, i32 app_id) {
    const CoreLoc loc{node, core};
    return CodsClient(space_, Endpoint{cluster_.global_core(loc), loc},
                      app_id);
  }

  /// A consumer whose lookup cache is the only caching layer: the
  /// schedule cache would otherwise satisfy repeats first (it caches the
  /// *schedule* independent of version and revalidates against windows).
  CodsClient lookup_only_consumer(i32 node, i32 core, i32 app_id) {
    CodsClient c = client(node, core, app_id);
    c.set_schedule_cache_enabled(false);
    return c;
  }

  std::vector<std::byte> pattern_data(const Box& box, u64 seed) {
    std::vector<std::byte> data(box_bytes(box, 8));
    fill_pattern(data, box, 8, seed);
    return data;
  }

  Cluster cluster_{ClusterSpec{.num_nodes = 4, .cores_per_node = 4}};
  Metrics metrics_;
  CodsSpace space_;
};

TEST_F(DhtCacheTest, RepeatedGetHitsAndSkipsQuery) {
  CodsClient producer = client(0, 0, 1);
  CodsClient consumer = lookup_only_consumer(1, 0, 2);
  const Box box{{0, 0}, {7, 7}};
  producer.put_seq("t", 0, box, pattern_data(box, 5), 8);

  std::vector<std::byte> out(box_bytes(box, 8));
  const GetResult first = consumer.get_seq("t", 0, box, out, 8);
  EXPECT_FALSE(first.lookup_cache_hit);
  EXPECT_GT(first.dht_cores, 0);
  EXPECT_EQ(consumer.lookup_cache_size(), 1u);

  const GetResult second = consumer.get_seq("t", 0, box, out, 8);
  EXPECT_TRUE(second.lookup_cache_hit);
  EXPECT_EQ(second.dht_cores, 0);  // no query RPCs on a hit
  EXPECT_EQ(second.bytes, first.bytes);
  EXPECT_EQ(second.sources, first.sources);
  EXPECT_EQ(verify_pattern(out, box, 8, 5), 0u);

  EXPECT_EQ(metrics_.count(2, "dht.lookup_miss"), 1u);
  EXPECT_EQ(metrics_.count(2, "dht.lookup_hit"), 1u);
}

TEST_F(DhtCacheTest, DisabledCacheNeverHitsNorCounts) {
  CodsClient producer = client(0, 0, 1);
  CodsClient consumer = lookup_only_consumer(1, 0, 2);
  consumer.set_lookup_cache_enabled(false);
  const Box box{{0, 0}, {7, 7}};
  producer.put_seq("t", 0, box, pattern_data(box, 5), 8);
  std::vector<std::byte> out(box_bytes(box, 8));
  for (int i = 0; i < 2; ++i) {
    const GetResult get = consumer.get_seq("t", 0, box, out, 8);
    EXPECT_FALSE(get.lookup_cache_hit);
    EXPECT_GT(get.dht_cores, 0);
  }
  EXPECT_EQ(consumer.lookup_cache_size(), 0u);
  EXPECT_EQ(metrics_.count(2, "dht.lookup_hit"), 0u);
  EXPECT_EQ(metrics_.count(2, "dht.lookup_miss"), 0u);
}

TEST_F(DhtCacheTest, InvalidatedOnPut) {
  CodsClient consumer = lookup_only_consumer(1, 0, 2);
  const Box left{{0, 0}, {7, 7}};
  const Box right{{0, 8}, {7, 15}};
  const Box whole{{0, 0}, {7, 15}};
  CodsClient p0 = client(0, 0, 1);
  p0.put_seq("u", 0, left, pattern_data(left, 3), 8);
  p0.put_seq("u", 0, right, pattern_data(right, 3), 8);

  std::vector<std::byte> out(box_bytes(whole, 8));
  EXPECT_FALSE(consumer.get_seq("u", 0, whole, out, 8).lookup_cache_hit);
  EXPECT_TRUE(consumer.get_seq("u", 0, whole, out, 8).lookup_cache_hit);

  // A new put of an overlapping region (re-execution replaces it, from a
  // different node) bumps the epoch: the cached lookup must not be used.
  space_.set_reexecution(true);
  CodsClient p2 = client(2, 0, 1);
  p2.put_seq("u", 0, right, pattern_data(right, 9), 8);
  space_.set_reexecution(false);

  const GetResult after = consumer.get_seq("u", 0, whole, out, 8);
  EXPECT_FALSE(after.lookup_cache_hit);
  // The untouched half is unchanged; the replaced half carries the new
  // producer's pattern (extract each half from the whole-region buffer).
  std::vector<std::byte> half(box_bytes(left, 8));
  copy_box_region(out, whole, half, left, left, 8);
  EXPECT_EQ(verify_pattern(half, left, 8, 3), 0u);
  copy_box_region(out, whole, half, right, right, 8);
  EXPECT_EQ(verify_pattern(half, right, 8, 9), 0u);
}

TEST_F(DhtCacheTest, InvalidatedOnRetireVersionAware) {
  CodsClient producer = client(0, 0, 1);
  CodsClient consumer = lookup_only_consumer(1, 0, 2);
  const Box box{{0, 0}, {7, 7}};
  producer.put_seq("w", 0, box, pattern_data(box, 1), 8);
  producer.put_seq("w", 1, box, pattern_data(box, 2), 8);

  std::vector<std::byte> out(box_bytes(box, 8));
  consumer.get_seq("w", 0, box, out, 8);
  consumer.get_seq("w", 1, box, out, 8);
  EXPECT_EQ(consumer.lookup_cache_size(), 2u);

  space_.retire("w", 0);
  // Version 0's entry is stale: a hit would dereference a withdrawn
  // window. The get must re-query and fail cleanly on the empty DHT.
  EXPECT_THROW(consumer.get_seq("w", 0, box, out, 8), Error);
  // Version 1 was not retired; its cached entry is still valid.
  const GetResult v1 = consumer.get_seq("w", 1, box, out, 8);
  EXPECT_TRUE(v1.lookup_cache_hit);
  EXPECT_EQ(verify_pattern(out, box, 8, 2), 0u);

  // Re-putting version 0 after retirement must be visible (epochs are
  // never erased, so the cache cannot resurrect the pre-retire lookup).
  producer.put_seq("w", 0, box, pattern_data(box, 7), 8);
  const GetResult v0 = consumer.get_seq("w", 0, box, out, 8);
  EXPECT_FALSE(v0.lookup_cache_hit);
  EXPECT_EQ(verify_pattern(out, box, 8, 7), 0u);
}

TEST_F(DhtCacheTest, InvalidatedOnDropNode) {
  CodsClient producer = client(0, 0, 1);
  CodsClient consumer = lookup_only_consumer(1, 0, 2);
  const Box box{{0, 0}, {7, 7}};
  producer.put_seq("x", 0, box, pattern_data(box, 4), 8);
  std::vector<std::byte> out(box_bytes(box, 8));
  consumer.get_seq("x", 0, box, out, 8);
  EXPECT_EQ(consumer.lookup_cache_size(), 1u);

  // Node 0 dies: its windows are withdrawn and DHT records dropped. A
  // stale cached lookup would pull from a withdrawn window and throw
  // "window not exposed"; the epoch bump forces a re-query instead.
  space_.drop_node(0);
  CodsClient recovery = client(2, 0, 1);
  space_.set_reexecution(true);
  recovery.put_seq("x", 0, box, pattern_data(box, 4), 8);
  space_.set_reexecution(false);

  const GetResult after = consumer.get_seq("x", 0, box, out, 8);
  EXPECT_FALSE(after.lookup_cache_hit);
  EXPECT_EQ(verify_pattern(out, box, 8, 4), 0u);
}

TEST_F(DhtCacheTest, CacheIsBounded) {
  CodsClient producer = client(0, 0, 1);
  CodsClient consumer = lookup_only_consumer(1, 0, 2);
  const Box box{{0, 0}, {3, 3}};
  std::vector<std::byte> out(box_bytes(box, 8));
  for (i32 v = 0; v < 300; ++v) {
    producer.put_seq("many", v, box, pattern_data(box, 1), 8);
    consumer.get_seq("many", v, box, out, 8);
    EXPECT_LE(consumer.lookup_cache_size(), 256u);
  }
}

// ---------------------------------------------------------------------------
// Property test: randomized interleavings of put / get / re-put / retire /
// drop_node. A caching consumer (schedule cache off, lookup cache on) and
// a fully uncached consumer read the same regions; outputs must be
// bit-identical and match the expected pattern at every step.
// ---------------------------------------------------------------------------

class DhtCacheProperty : public ::testing::TestWithParam<u64> {};

TEST_P(DhtCacheProperty, CachedEqualsUncachedUnderMutations) {
  CODS_SEED_NOTE(GetParam());
  Rng rng(GetParam());
  const Cluster cluster(ClusterSpec{.num_nodes = 4, .cores_per_node = 4});
  Metrics metrics;
  CodsSpace space(cluster, metrics, Box{{0, 0}, {15, 15}});
  const auto make_client = [&](i32 node, i32 core, i32 app) {
    const CoreLoc loc{node, core};
    return CodsClient(space, Endpoint{cluster.global_core(loc), loc}, app);
  };

  CodsClient cached = make_client(1, 1, 2);
  cached.set_schedule_cache_enabled(false);  // isolate the lookup cache
  CodsClient uncached = make_client(2, 1, 3);
  uncached.set_schedule_cache_enabled(false);
  uncached.set_lookup_cache_enabled(false);

  const Box top{{0, 0}, {7, 15}};
  const Box bottom{{8, 0}, {15, 15}};
  const Box whole{{0, 0}, {15, 15}};
  constexpr u64 kElem = 8;

  // seed_of[v] tracks the pattern the live copy of version v carries; -1
  // means the version is not currently stored.
  std::vector<i64> seed_of;
  const auto put_version = [&](i32 version, u64 seed, i32 node) {
    CodsClient p_top = make_client(node, 0, 1);
    CodsClient p_bot = make_client((node + 1) % 4, 0, 1);
    std::vector<std::byte> d_top(box_bytes(top, kElem));
    std::vector<std::byte> d_bot(box_bytes(bottom, kElem));
    fill_pattern(d_top, top, kElem, seed);
    fill_pattern(d_bot, bottom, kElem, seed);
    p_top.put_seq("f", version, top, d_top, kElem);
    p_bot.put_seq("f", version, bottom, d_bot, kElem);
  };

  i32 next_version = 0;
  u64 next_seed = GetParam() * 1000;
  u64 hits = 0;
  for (int step = 0; step < 60; ++step) {
    const u64 action = rng.below(10);
    if (action < 3 || seed_of.empty()) {
      // New version from clients on a random node pair.
      put_version(next_version, next_seed, static_cast<i32>(rng.below(4)));
      seed_of.push_back(static_cast<i64>(next_seed));
      ++next_version;
      ++next_seed;
    } else if (action < 7) {
      // Read a random live version through both consumers. Repeat reads
      // of the same version exercise cache hits.
      const i32 v = static_cast<i32>(rng.below(seed_of.size()));
      if (seed_of[static_cast<size_t>(v)] < 0) continue;
      const Box& region = rng.below(3) == 0 ? whole
                          : rng.below(2) == 0 ? top
                                              : bottom;
      std::vector<std::byte> a(box_bytes(region, kElem));
      std::vector<std::byte> b(box_bytes(region, kElem));
      const GetResult ga = cached.get_seq("f", v, region, a, kElem);
      const GetResult gb = uncached.get_seq("f", v, region, b, kElem);
      ASSERT_EQ(a, b) << "cached and uncached reads diverged, seed="
                      << GetParam() << " step=" << step;
      EXPECT_EQ(ga.bytes, gb.bytes);
      EXPECT_EQ(ga.sources, gb.sources);
      EXPECT_EQ(verify_pattern(
                    a, region, kElem,
                    static_cast<u64>(seed_of[static_cast<size_t>(v)])),
                0u);
      if (ga.lookup_cache_hit) ++hits;
    } else if (action < 8) {
      // Re-execution style re-put: same regions, new pattern, other nodes.
      const i32 v = static_cast<i32>(rng.below(seed_of.size()));
      if (seed_of[static_cast<size_t>(v)] < 0) continue;
      space.set_reexecution(true);
      put_version(v, next_seed, static_cast<i32>(rng.below(4)));
      space.set_reexecution(false);
      seed_of[static_cast<size_t>(v)] = static_cast<i64>(next_seed);
      ++next_seed;
    } else if (action < 9) {
      const i32 v = static_cast<i32>(rng.below(seed_of.size()));
      if (seed_of[static_cast<size_t>(v)] < 0) continue;
      space.retire("f", v);
      seed_of[static_cast<size_t>(v)] = -1;
    } else {
      // Node failure: every version loses the halves homed there; restore
      // all live versions from scratch on surviving nodes (re-execution).
      const i32 node = static_cast<i32>(rng.below(4));
      space.drop_node(node);
      space.set_reexecution(true);
      for (size_t v = 0; v < seed_of.size(); ++v) {
        if (seed_of[v] < 0) continue;
        put_version(static_cast<i32>(v), static_cast<u64>(seed_of[v]),
                    (node + 1) % 4);
      }
      space.set_reexecution(false);
    }
  }
  // Epilogue: a guaranteed back-to-back repeat read so every seed
  // exercises at least one hit (the random walk above may not repeat an
  // unmutated version on its own).
  if (seed_of.empty() || seed_of.back() < 0) {
    put_version(next_version, next_seed, 0);
    seed_of.push_back(static_cast<i64>(next_seed));
  }
  const i32 last = static_cast<i32>(seed_of.size()) - 1;
  const u64 last_seed = static_cast<u64>(seed_of[static_cast<size_t>(last)]);
  std::vector<std::byte> a(box_bytes(whole, kElem));
  std::vector<std::byte> b(box_bytes(whole, kElem));
  cached.get_seq("f", last, whole, a, kElem);
  const GetResult repeat = cached.get_seq("f", last, whole, a, kElem);
  EXPECT_TRUE(repeat.lookup_cache_hit);
  if (repeat.lookup_cache_hit) ++hits;
  uncached.get_seq("f", last, whole, b, kElem);
  EXPECT_EQ(a, b);
  EXPECT_EQ(verify_pattern(a, whole, kElem, last_seed), 0u);
  EXPECT_GT(hits, 0u) << "interleaving never exercised a cache hit, seed="
                      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhtCacheProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace cods
