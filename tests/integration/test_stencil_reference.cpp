// Numerical correctness of the distributed stencil simulation: the coupled
// parallel run (halo exchanges over vmpi, publication through CoDS) must
// reproduce a serial reference Jacobi solve bit-for-bit reading through
// get_cont, for any process grid.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/synthetic.hpp"

namespace cods {
namespace {

/// Serial reference: same init (product of sines), same explicit diffusion
/// update with zero Dirichlet boundary.
std::vector<double> serial_jacobi(i64 h, i64 w, i32 iterations,
                                  double alpha) {
  std::vector<double> u(static_cast<size_t>(h * w));
  std::vector<double> next(u.size());
  for (i64 y = 0; y < h; ++y) {
    for (i64 x = 0; x < w; ++x) {
      const double fy = static_cast<double>(y + 1) / static_cast<double>(h + 1);
      const double fx = static_cast<double>(x + 1) / static_cast<double>(w + 1);
      u[static_cast<size_t>(y * w + x)] =
          std::sin(fy * 3.14159265358979323846) *
          std::sin(fx * 3.14159265358979323846);
    }
  }
  auto at = [&](const std::vector<double>& grid, i64 y, i64 x) {
    if (y < 0 || y >= h || x < 0 || x >= w) return 0.0;  // Dirichlet 0
    return grid[static_cast<size_t>(y * w + x)];
  };
  for (i32 iter = 0; iter < iterations; ++iter) {
    for (i64 y = 0; y < h; ++y) {
      for (i64 x = 0; x < w; ++x) {
        const double centre = at(u, y, x);
        const double nbrs = at(u, y - 1, x) + at(u, y + 1, x) +
                            at(u, y, x - 1) + at(u, y, x + 1);
        next[static_cast<size_t>(y * w + x)] =
            centre + alpha * (nbrs - 4.0 * centre);
      }
    }
    std::swap(u, next);
  }
  return u;
}

class StencilReference
    : public ::testing::TestWithParam<std::pair<i32, i32>> {};

TEST_P(StencilReference, DistributedMatchesSerial) {
  const auto [py, px] = GetParam();
  const i64 h = 24;
  const i64 w = 24;
  const i32 iterations = 5;
  const double alpha = 0.15;

  Cluster cluster(ClusterSpec{.num_nodes = 4, .cores_per_node = 4});
  Metrics metrics;
  WorkflowServer server(cluster, metrics,
                        Box{{0, 0}, {h - 1, w - 1}});
  AppSpec sim;
  sim.app_id = 1;
  sim.name = "sim";
  sim.dec = blocked({h, w}, {py, px});
  server.register_app(sim, make_stencil_simulation({"u", iterations, alpha}));

  // A single-task collector grabs the final field through get_cont.
  auto collected = std::make_shared<std::vector<double>>();
  AppSpec collector;
  collector.app_id = 2;
  collector.name = "collector";
  collector.dec = blocked({h, w}, {1, 1});
  server.register_app(collector, [&collected, iterations](AppCtx& ctx) {
    const Box whole = ctx.spec->dec.domain_box();
    std::vector<std::byte> out(box_bytes(whole, sizeof(double)));
    // Drain all frames so producers never block; keep the last.
    for (i32 iter = 0; iter < iterations; ++iter) {
      ctx.cods->get_cont("u", iter, whole, out, sizeof(double));
    }
    const auto* values = reinterpret_cast<const double*>(out.data());
    collected->assign(values, values + whole.volume());
  });

  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_bundle({1, 2});
  server.run(dag);

  const auto reference = serial_jacobi(h, w, iterations, alpha);
  ASSERT_EQ(collected->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    // The distributed update performs the identical arithmetic; only the
    // summation order inside one cell is fixed, so results match to ULPs.
    EXPECT_NEAR((*collected)[i], reference[i], 1e-12) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, StencilReference,
    ::testing::Values(std::pair<i32, i32>{1, 1}, std::pair<i32, i32>{2, 2},
                      std::pair<i32, i32>{4, 2}, std::pair<i32, i32>{3, 1},
                      std::pair<i32, i32>{2, 4}));

}  // namespace
}  // namespace cods
