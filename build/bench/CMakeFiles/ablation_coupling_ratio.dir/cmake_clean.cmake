file(REMOVE_RECURSE
  "CMakeFiles/ablation_coupling_ratio.dir/ablation_coupling_ratio.cpp.o"
  "CMakeFiles/ablation_coupling_ratio.dir/ablation_coupling_ratio.cpp.o.d"
  "ablation_coupling_ratio"
  "ablation_coupling_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coupling_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
