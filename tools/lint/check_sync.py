#!/usr/bin/env python3
"""Lock-discipline location lint for src/ (docs/CONCURRENCY.md).

One rule family — raw standard locking primitives (std::mutex,
std::lock_guard, <condition_variable>, ...) are allowed only in
src/common/sync.hpp, which wraps them behind the annotated Mutex /
SharedMutex / MutexLock / CondVar types. Everything else must go through
the wrappers so Clang's -Wthread-safety analysis and the lock-order
registry see every acquisition. These are *location* bans: a plain
per-line regex answers them exactly, so this lint stays a dependency-free
pre-commit-fast gate.

Everything that needs symbol resolution — wall-clock/randomness bans that
see through type aliases, blocking-primitive funneling, byte-accounting
funnels, static lock ordering — lives in the AST-based analyzer
`tools/analyze/codslint` (docs/STATIC_ANALYSIS.md). The determinism rules
that used to live here were migrated to its `clock` check, which catches
the alias evasions this lint was blind to.

A line ending in a `check_sync:allow` comment is exempt (used by
sync.hpp / lock_order.cpp for their own internals). Scope is src/ only:
tests may use raw threads freely and bench/ keeps a deliberate
std::mutex baseline for comparison.

Usage: tools/lint/check_sync.py [repo_root]   (exit 1 on any violation)
       tools/lint/check_sync.py --self-test  (verify every rule fires)
"""

import pathlib
import re
import sys
import tempfile

ALLOW_MARKER = "check_sync:allow"

# The wrapper layer itself: the only files allowed to touch the raw
# primitives.
SYNC_EXEMPT = {"src/common/sync.hpp", "src/common/lock_order.cpp"}

# (pattern, message) — applied per line to every .hpp/.cpp under src/.
SYNC_RULES = [
    (
        re.compile(
            r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
            r"recursive_timed_mutex|shared_timed_mutex)\b"
        ),
        "raw standard mutex; use cods::Mutex / cods::SharedMutex "
        "(src/common/sync.hpp)",
    ),
    (
        re.compile(r"std::(lock_guard|scoped_lock|unique_lock|shared_lock)\b"),
        "raw standard lock guard; use cods::MutexLock / WriterLock / "
        "ReaderLock (src/common/sync.hpp)",
    ),
    (
        re.compile(r"std::condition_variable(_any)?\b"),
        "raw condition variable; use cods::CondVar (src/common/sync.hpp)",
    ),
    (
        re.compile(r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>"),
        "raw locking header; include common/sync.hpp instead",
    ),
]


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    errors = []
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{path}: not valid UTF-8"]
    if path.relative_to(root).as_posix() in SYNC_EXEMPT:
        return []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if ALLOW_MARKER in line:
            continue
        for pattern, message in SYNC_RULES:
            if pattern.search(line):
                errors.append(f"{path}:{lineno}: {message}")
    return errors


# One line that must trip each rule, in SYNC_RULES order. The self-test
# fails if a rule regex rots and stops matching its canonical violation,
# or if the allow-marker / exemption logic breaks.
SELF_TEST_BAIT = [
    "std::mutex m;",
    "std::lock_guard g(m);",
    "std::condition_variable cv;",
    "#include <mutex>",
]


def self_test() -> int:
    """Scan a synthetic tree and verify each rule fires exactly once,
    allow-marked lines are skipped, and SYNC_EXEMPT files are skipped."""
    rules = SYNC_RULES
    assert len(SELF_TEST_BAIT) == len(rules), "bait list out of date"
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        # 1. Every rule must fire on its bait line, and only that rule
        #    (baits are crafted to be mutually exclusive per rule family).
        for i, (bait, (pattern, _)) in enumerate(zip(SELF_TEST_BAIT, rules)):
            path = root / "src" / f"bait_{i}.cpp"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(bait + "\n", encoding="utf-8")
            errors = check_file(path, root)
            if len(errors) != 1:
                failures.append(
                    f"rule {i} ({pattern.pattern!r}): expected 1 hit on "
                    f"{bait!r}, got {errors}")
            path.unlink()
        # 2. The allow marker must suppress every rule.
        allowed = root / "src" / "allowed.cpp"
        allowed.write_text(
            "".join(f"{b}  // check_sync:allow\n" for b in SELF_TEST_BAIT),
            encoding="utf-8")
        errors = check_file(allowed, root)
        if errors:
            failures.append(f"allow marker did not suppress: {errors}")
        # 3. A SYNC_EXEMPT file is skipped entirely (it IS the wrapper).
        exempt = root / "src" / "common" / "sync.hpp"
        assert exempt.relative_to(root).as_posix() in SYNC_EXEMPT
        exempt.parent.mkdir(parents=True)
        exempt.write_text("std::mutex m;\n", encoding="utf-8")
        errors = check_file(exempt, root)
        if errors:
            failures.append(f"exempt file flagged: {errors}")
        # 4. A clean file produces nothing.
        clean = root / "src" / "clean.cpp"
        clean.write_text("#include \"common/sync.hpp\"\nMutex m{\"x\"};\n",
                         encoding="utf-8")
        errors = check_file(clean, root)
        if errors:
            failures.append(f"clean file flagged: {errors}")
    for failure in failures:
        print(f"check_sync self-test FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"check_sync: self-test OK ({len(rules)} rules verified)")
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"check_sync: no src/ under {root}", file=sys.stderr)
        return 2
    errors = []
    for path in sorted(src.rglob("*")):
        if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
            errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_sync: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_sync: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
