# Empty compiler generated dependencies file for fig14_concurrent_breakdown.
# This may be replaced when dependencies are built.
