# Empty compiler generated dependencies file for cods_common.
# This may be replaced when dependencies are built.
