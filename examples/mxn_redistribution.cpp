// The M x N redistribution problem (paper §I): data produced by an
// application running on M processes is coupled with another application
// running on N processes with a different decomposition. This example
// shows the geometry machinery directly — overlap volumes, the
// communication schedule, and how distribution-type mismatches explode the
// fan-out (the Fig. 10 effect) — then moves real data through CoDS to
// prove the schedule correct.
//
//   ./mxn_redistribution
#include <cstdio>

#include "core/cods.hpp"
#include "geometry/redistribution.hpp"

using namespace cods;

namespace {

void describe(const char* title, const Decomposition& src,
              const Decomposition& dst) {
  const auto volumes = redistribution_volumes(src, dst);
  // Fan-out: how many producers does one consumer need to contact?
  std::map<i32, int> sources_per_consumer;
  for (const TransferVolume& t : volumes) ++sources_per_consumer[t.dst_rank];
  int max_fan = 0;
  for (const auto& [rank, n] : sources_per_consumer) {
    max_fan = std::max(max_fan, n);
  }
  std::printf("%-28s M=%-3d N=%-3d pairs=%-5zu max fan-in=%d\n", title,
              src.ntasks(), dst.ntasks(), volumes.size(), max_fan);
}

}  // namespace

int main() {
  std::printf("M x N redistribution schedules over a 64x64 domain\n\n");
  const std::vector<i64> ext = {64, 64};

  describe("blocked(16) -> blocked(4)", Decomposition(ext, {4, 4}, Dist::kBlocked),
           Decomposition(ext, {2, 2}, Dist::kBlocked));
  describe("blocked(16) -> cyclic(4)", Decomposition(ext, {4, 4}, Dist::kBlocked),
           Decomposition(ext, {2, 2}, Dist::kCyclic));
  describe("cyclic(16) -> cyclic(4)", Decomposition(ext, {4, 4}, Dist::kCyclic),
           Decomposition(ext, {2, 2}, Dist::kCyclic));
  describe("blk-cyc(16,8) -> blocked(4)",
           Decomposition(ext, {4, 4}, Dist::kBlockCyclic, 8),
           Decomposition(ext, {2, 2}, Dist::kBlocked));

  std::printf("\nMismatched distributions force every consumer to touch "
              "every producer\n(the paper's Fig. 10) — matched ones keep the "
              "fan-in small.\n\n");

  // Now do it for real: 16 blocked producers -> 4 cyclic consumers through
  // a live CoDS space, verifying every byte.
  Cluster cluster(ClusterSpec{.num_nodes = 5, .cores_per_node = 4});
  Metrics metrics;
  CodsSpace space(cluster, metrics, Box{{0, 0}, {63, 63}});
  const Decomposition producers(ext, {4, 4}, Dist::kBlocked);
  const Decomposition consumers(ext, {2, 2}, Dist::kCyclic);

  for (i32 rank = 0; rank < producers.ntasks(); ++rank) {
    CodsClient client(space, Endpoint{rank, cluster.core_loc(rank)}, 1);
    for (const Box& box : producers.owned_boxes(rank)) {
      std::vector<std::byte> data(box_bytes(box, 8));
      fill_pattern(data, box, 8, 99);
      client.put_seq("u", 0, box, data, 8);
    }
  }
  u64 bad_total = 0;
  u64 pulled = 0;
  for (i32 rank = 0; rank < consumers.ntasks(); ++rank) {
    CodsClient client(space,
                      Endpoint{16 + rank, cluster.core_loc(16 + rank)}, 2);
    // A cyclic consumer owns many small boxes; retrieve and verify each.
    for (const Box& box : consumers.owned_boxes(rank)) {
      std::vector<std::byte> out(box_bytes(box, 8));
      const GetResult get = client.get_seq("u", 0, box, out, 8);
      pulled += get.bytes;
      bad_total += verify_pattern(out, box, 8, 99);
    }
  }
  std::printf("live redistribution: pulled %s across 16 producers -> 4 "
              "cyclic consumers, %llu bad cells\n",
              format_bytes(pulled).c_str(),
              static_cast<unsigned long long>(bad_total));
  return bad_total == 0 ? 0 : 1;
}
