#include "runtime/redistribute.hpp"

#include "core/layout.hpp"
#include "trace/trace.hpp"

namespace cods {

namespace {

void require_blocked(const Decomposition& dec) {
  for (int d = 0; d < dec.ndim(); ++d) {
    CODS_REQUIRE(dec.dim(d).dist == Dist::kBlocked,
                 "meta-app redistribution requires blocked decompositions");
  }
}

Box single_box(const Decomposition& dec, i32 rank) {
  const auto boxes = dec.owned_boxes(rank);
  CODS_CHECK(boxes.size() == 1, "blocked task owns one box");
  return boxes[0];
}

}  // namespace

RedistributeStats meta_redistribute_send(const Comm& world,
                                         const Decomposition& src,
                                         i32 src_rank,
                                         const Decomposition& dst,
                                         i32 consumer_rank0,
                                         std::span<const std::byte> data,
                                         u64 elem_size, i32 tag) {
  require_blocked(src);
  require_blocked(dst);
  ScopedSpan span(SpanCategory::kRedistribute, 0, /*detail=*/1);
  const Box mine = single_box(src, src_rank);
  CODS_REQUIRE(data.size() >= box_bytes(mine, elem_size),
               "producer buffer too small for its owned box");
  RedistributeStats stats;
  for (i32 dst_rank = 0; dst_rank < dst.ntasks(); ++dst_rank) {
    const Box theirs = single_box(dst, dst_rank);
    const auto overlap = intersect(mine, theirs);
    if (!overlap) continue;
    // Pack the overlap into a contiguous buffer and ship it.
    std::vector<std::byte> packed(box_bytes(*overlap, elem_size));
    copy_box_region(data, mine, packed, *overlap, *overlap, elem_size);
    world.send(consumer_rank0 + dst_rank, tag, packed);
    stats.bytes_sent += packed.size();
    ++stats.peers;
  }
  span.close(-1.0, stats.bytes_sent);
  return stats;
}

RedistributeStats meta_redistribute_recv(const Comm& world,
                                         const Decomposition& src,
                                         i32 producer_rank0,
                                         const Decomposition& dst,
                                         i32 dst_rank,
                                         std::span<std::byte> out,
                                         u64 elem_size, i32 tag) {
  require_blocked(src);
  require_blocked(dst);
  ScopedSpan span(SpanCategory::kRedistribute, 0, /*detail=*/2);
  const Box mine = single_box(dst, dst_rank);
  CODS_REQUIRE(out.size() >= box_bytes(mine, elem_size),
               "consumer buffer too small for its owned box");
  RedistributeStats stats;
  for (i32 src_rank = 0; src_rank < src.ntasks(); ++src_rank) {
    const Box theirs = single_box(src, src_rank);
    const auto overlap = intersect(mine, theirs);
    if (!overlap) continue;
    const Message m = world.recv(producer_rank0 + src_rank, tag);
    CODS_CHECK(m.payload.size() == box_bytes(*overlap, elem_size),
               "unexpected redistribution message size");
    copy_box_region(m.payload, *overlap, out, mine, *overlap, elem_size);
    stats.bytes_received += m.payload.size();
    ++stats.peers;
  }
  span.close(-1.0, stats.bytes_received);
  return stats;
}

}  // namespace cods
