"""funnel — every byte of traffic flows through an audited funnel.

The PR 4 invariant: metrics byte counters, the TransferLog journal and
ledger-flagged trace leaves are three accountings of the same traffic, and
they can only stay exactly equal because one choke point writes all three.
This check machine-enforces it: a call to `Metrics::record`,
`TransferLog::record`, or a `TraceContext::leaf` carrying
`TraceFlags::kLedger` may only appear inside an audited funnel function —
`HybridDart::record` (transport traffic) or `Runtime::note_transfer`
(rank-to-rank mailbox traffic) — so a new subsystem cannot grow a fourth,
drift-prone accounting path.

Receivers are resolved through field types and method return types
(`runtime_->metrics().record(...)` resolves to cods::Metrics), so renaming
a local variable or stacking a wrapper does not evade the check.
"""

from __future__ import annotations

from ..model import CodeIndex, FunctionDef, CallSite
from ..registry import Check, Finding, register

# Method calls that mutate one of the three byte accountings, keyed by the
# canonical receiver class (bare name — the canonicalizer strips cods::).
SINK_METHODS = {
    ("Metrics", "record"),
    ("TransferLog", "record"),
}

# Functions allowed to call the sinks (qualname suffix match): the audited
# funnels. HybridDart::record covers all transport traffic;
# Runtime::note_transfer is the mailbox-path funnel (vmpi sends never touch
# HybridDart, so they have their own single choke point).
FUNNEL_FUNCTIONS = (
    "HybridDart::record",
    "Runtime::note_transfer",
)

LEDGER_FLAG = "kLedger"


def _is_funnel(fn: FunctionDef) -> bool:
    return any(fn.qualname.endswith(suffix) for suffix in FUNNEL_FUNCTIONS)


@register
class FunnelCheck(Check):
    name = "funnel"
    description = ("byte-accounting sinks (Metrics::record, "
                   "TransferLog::record, kLedger trace leaves) only inside "
                   "the audited funnels")

    def run(self, index: CodeIndex) -> list[Finding]:
        findings: list[Finding] = []
        for defs in index.functions.values():
            for fn in defs:
                if _is_funnel(fn):
                    continue
                for call in fn.calls:
                    f = self._classify(index, fn, call)
                    if f is not None:
                        findings.append(f)
        findings.sort(key=lambda f: (f.file, f.line))
        return findings

    def _classify(self, index: CodeIndex, fn: FunctionDef,
                  call: CallSite) -> Finding | None:
        if call.name == "record":
            recv = index.resolve_receiver_class(call, fn)
            if recv is None:
                return None
            bare = recv.rsplit("::", 1)[-1]
            if (bare, call.name) in SINK_METHODS:
                return Finding(
                    self.name, call.file, call.line,
                    f"direct {bare}::record() outside the byte-accounting "
                    "funnel; route through HybridDart::record() or "
                    "Runtime::note_transfer() so metrics, journal and "
                    "ledger trace cannot drift (docs/TRACING.md)",
                    f"{fn.qualname}")
            return None
        if call.name == "leaf":
            lf = index.files.get(call.file)
            if lf is None:
                return None
            args = lf.tokens[call.arg_range[0]:call.arg_range[1]]
            if any(t.kind == "ident" and t.text == LEDGER_FLAG
                   for t in args):
                return Finding(
                    self.name, call.file, call.line,
                    "ledger-flagged trace leaf emitted outside the "
                    "byte-accounting funnel; ledger leaves must come from "
                    "HybridDart::record() / Runtime::note_transfer() or "
                    "trace-vs-journal reconciliation breaks",
                    f"{fn.qualname}")
        return None
