// Mapping advisor: predicts, from decompositions alone, whether data-centric
// in-situ placement will pay off for a coupling — and by how much — before
// any allocation is spent. Wraps the modeled-scenario evaluator (which
// shares its code paths with the live engine, so predictions are
// byte-exact) and applies the paper's own effectiveness criteria:
// distribution-type match (Fig. 8/10) and the inter/intra data-size ratio
// (§V-B closing remark).
#pragma once

#include "workflow/scenario.hpp"

namespace cods {

struct MappingAdvice {
  MappingStrategy recommended = MappingStrategy::kDataCentric;

  u64 rr_network_bytes = 0;  ///< coupled + halo network bytes, round-robin
  u64 dc_network_bytes = 0;  ///< same under data-centric mapping
  double network_savings = 0.0;  ///< 1 - dc/rr, in [0, 1]

  double rr_retrieve_time = 0.0;
  double dc_retrieve_time = 0.0;

  /// Max producers any single consumer task must contact (Fig. 10 metric);
  /// values far above cores-per-node imply co-location cannot help.
  i32 max_fan_in = 0;

  /// Ratio of coupled volume to total halo volume (§V-B): below ~1 the
  /// benefit erodes.
  double inter_intra_ratio = 0.0;

  std::string rationale;  ///< one-line human-readable explanation
};

/// Evaluates both strategies on `config` (its `strategy` field is ignored)
/// and recommends one. Thresholds: recommend data-centric when it saves at
/// least `min_savings` of the network traffic (default 10%).
MappingAdvice advise_mapping(ScenarioConfig config,
                             double min_savings = 0.10);

}  // namespace cods
