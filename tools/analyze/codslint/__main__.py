"""codslint CLI.

    python3 tools/analyze/codslint --compdb build/compile_commands.json
    python3 tools/analyze/codslint --self-test
    python3 tools/analyze/codslint --dump-lock-graph
    python3 tools/analyze/codslint --verify-lock-graph tests/static/analyze/lock_graph_golden.txt

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/setup
error. JSON report schema: registry.to_json (version 1).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from . import compdb, frontend, registry, selftest
from . import checks  # noqa: F401  -- populates the registry
from .checks import lockorder


def parse_args(argv: list[str]) -> argparse.Namespace:
    p = argparse.ArgumentParser(
        prog="codslint",
        description="AST-based invariant analyzer for the cods codebase "
                    "(docs/STATIC_ANALYSIS.md)")
    p.add_argument("--root", type=pathlib.Path,
                   default=pathlib.Path(__file__).resolve().parents[3],
                   help="repository root (default: inferred from this file)")
    p.add_argument("--compdb", type=pathlib.Path, default=None,
                   help="compile_commands.json (default: "
                        "<root>/build/compile_commands.json if present, "
                        "else a synthesized src/ glob)")
    p.add_argument("--subtree", default="src",
                   help="restrict analysis to TUs under <root>/<subtree>")
    p.add_argument("--check", action="append", dest="checks", default=None,
                   metavar="NAME", help="run only this check (repeatable)")
    p.add_argument("--json", type=pathlib.Path, default=None,
                   metavar="FILE", help="also write a JSON report "
                                        "(- for stdout)")
    p.add_argument("--list-checks", action="store_true",
                   help="list registered checks and exit")
    p.add_argument("--self-test", action="store_true",
                   help="run the bait corpus under tests/static/analyze")
    p.add_argument("--dump-lock-graph", action="store_true",
                   help="print the extracted lock-order graph and exit "
                        "(cycles still fail)")
    p.add_argument("--verify-lock-graph", type=pathlib.Path, default=None,
                   metavar="GOLDEN", help="diff the extracted graph against "
                                          "a pinned golden file")
    p.add_argument("--runtime-hierarchy", type=pathlib.Path, default=None,
                   metavar="FILE", help="check the static graph covers every "
                                        "runtime-observed edge "
                                        "(lock_order::dump_hierarchy output)")
    p.add_argument("--no-clang", action="store_true",
                   help="skip the optional libclang augmentation")
    p.add_argument("--verbose", action="store_true")
    return p.parse_args(argv)


def main(argv: list[str]) -> int:
    args = parse_args(argv)
    if args.list_checks:
        for name, factory in sorted(registry.all_checks().items()):
            print(f"{name:14s} {factory().description}")
        return 0
    root = args.root.resolve()
    if args.self_test:
        return selftest.run(root, verbose=args.verbose)

    compdb_path = args.compdb
    if compdb_path is None:
        default = root / "build" / "compile_commands.json"
        compdb_path = default if default.is_file() else None
    if compdb_path is not None:
        if not compdb_path.is_file():
            print(f"codslint: no such compilation database: {compdb_path}",
                  file=sys.stderr)
            return 2
        commands = compdb.load(compdb_path, root, args.subtree)
        if not commands:
            print(f"codslint: {compdb_path} has no TUs under "
                  f"{root / args.subtree}", file=sys.stderr)
            return 2
    else:
        commands = compdb.fallback_commands(root, args.subtree)
        print("codslint: no compile_commands.json (configure with "
              "`cmake -B build -S .`); falling back to a src/ glob",
              file=sys.stderr)

    index = frontend.build_index(commands, root, verbose=args.verbose,
                                 use_clang=not args.no_clang)
    check_objs = registry.make_checks(args.checks)
    raw: list[registry.Finding] = []
    lock_graph = None
    for check in check_objs:
        raw.extend(check.run(index))
        if isinstance(check, lockorder.LockOrderCheck):
            lock_graph = check.graph

    graph_modes = args.dump_lock_graph or args.verify_lock_graph or \
        args.runtime_hierarchy
    if graph_modes and lock_graph is None:
        # The graph flags imply the lock-order check even under --check.
        check = lockorder.LockOrderCheck()
        raw.extend(check.run(index))
        lock_graph = check.graph

    if args.runtime_hierarchy is not None:
        try:
            runtime_text = args.runtime_hierarchy.read_text(encoding="utf-8")
        except OSError as e:
            print(f"codslint: cannot read runtime hierarchy: {e}",
                  file=sys.stderr)
            return 2
        raw.extend(lockorder.diff_runtime(lock_graph, runtime_text))

    kept, suppressed = registry.apply_allow_markers(raw, index)
    kept.sort(key=lambda f: (f.file, f.line, f.check))

    if args.dump_lock_graph:
        sys.stdout.write(lock_graph.render())
    if args.verify_lock_graph is not None:
        try:
            golden = args.verify_lock_graph.read_text(encoding="utf-8")
        except OSError as e:
            print(f"codslint: cannot read golden lock graph: {e}",
                  file=sys.stderr)
            return 2
        got = lock_graph.render()
        if _normalize_graph(got) != _normalize_graph(golden):
            print("codslint: extracted lock graph differs from golden "
                  f"{args.verify_lock_graph}:", file=sys.stderr)
            _print_graph_diff(golden, got)
            return 1
        print(f"codslint: lock graph matches golden "
              f"({len(lock_graph.edges)} edges)", file=sys.stderr)

    if args.json is not None:
        payload = registry.to_json(kept, suppressed, str(root))
        if str(args.json) == "-":
            sys.stdout.write(payload)
        else:
            args.json.write_text(payload, encoding="utf-8")
    for f in kept:
        print(f.render(str(root)))
    n_files = len([p for p in index.files])
    print(f"codslint: {len(kept)} finding(s), {len(suppressed)} "
          f"allow-suppressed, {n_files} files analyzed", file=sys.stderr)
    return 1 if kept else 0


def _normalize_graph(text: str) -> list[str]:
    return sorted(ln.strip() for ln in text.splitlines()
                  if ln.strip() and not ln.lstrip().startswith("#"))


def _print_graph_diff(golden: str, got: str) -> None:
    g, e = set(_normalize_graph(golden)), set(_normalize_graph(got))
    for edge in sorted(g - e):
        print(f"  - {edge}   (in golden, not extracted)", file=sys.stderr)
    for edge in sorted(e - g):
        print(f"  + {edge}   (extracted, not in golden)", file=sys.stderr)
    print("  regenerate with --dump-lock-graph after auditing the change",
          file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
