// Reproduces Figure 16: weak-scaling of the CoDS data-sharing substrate.
// Core counts scale 512/64 -> 8192/1024 (concurrent) and 512/(128+384) ->
// 8192/(2048+6144) (sequential); every producer task inserts 16 MiB, so the
// total redistributed data grows 16-fold (8 -> 128 GiB and 16 -> 256 GiB).
//
// Paper shape: retrieve times grow only mildly (link/NIC contention at
// larger scale); SAP2/SAP3 grow faster than CAP2 because the sequential
// scenario issues twice as many concurrent retrieve requests and the two
// consumers pull simultaneously.
//
// Usage:
//   fig16_weak_scaling                              modeled sweep (above)
//   fig16_weak_scaling --simulate [--smoke] [--out BENCH_simulate.json]
//
// --simulate switches to a live-enactment weak-scaling sweep under
// ExecMode::kSimulate (docs/SIMULATION.md): every rank of a sequentially
// coupled producer -> consumer workflow actually executes — puts, DHT
// registration, redistribution pulls, pattern verification — as
// discrete-event fibers on one thread, up to 1,310,720 ranks (a
// 1,048,576-rank producer wave at side=1024). Per-task payloads are
// small (the point is rank-count scaling, not bandwidth). Each point
// records wall time, scheduler events/sec (fiber context switches over
// wall time), and process peak RSS; the JSON pins the bytes-per-rank
// budget the CI scale smoke enforces. --smoke caps the ladder for the
// CI Release job.
#include <chrono>
#include <cstring>
#include <memory>

#include "apps/synthetic.hpp"
#include "paper_config.hpp"

using namespace cods;
using namespace cods::bench;

namespace {

struct SimulatePoint {
  i32 side = 0;  ///< producer task grid is side x side
  i32 producer_tasks = 0;
  i32 consumer_tasks = 0;
  i32 ranks = 0;
  double wall_seconds = 0.0;
  u64 sim_events = 0;       ///< fiber context switches the run scheduled
  double events_per_sec = 0.0;
  u64 peak_rss_bytes = 0;   ///< process high-water mark after this point
                            ///< (monotone across the sweep: the kernel
                            ///< counter never decreases within a process)
  u64 arena_bytes = 0;      ///< stack-arena bytes made writable
  u64 inter_shm = 0;
  u64 inter_net = 0;
  u64 stored_bytes = 0;
  u64 mismatches = 0;
};

/// Peak-RSS regression budget the CI scale smoke reads back from the
/// committed JSON: the smoke's process peak RSS divided by its rank
/// count must stay under this. The sweep's asymptote is ~4,970 B/rank
/// (side=1024, 1,310,720 ranks); the smoke's producer-only 262,144-rank
/// wave amortizes fixed process costs worse and measures ~6,156 B/rank.
/// Chosen ~2x the smoke's measured bytes/rank for slack.
constexpr u64 kRssBudgetBytesPerRank = 12288;

/// Cluster spec for the simulate rungs: near-cubic torus with just
/// enough volume, instead of the default exact factorization. Rung node
/// counts are arbitrary ceilings (ranks / cores-per-node) and routinely
/// carry a large prime factor — 87,382 nodes factorizes exactly only as
/// a {43691, 2, 1} ring, where dimension-order routes average ~11,000
/// links per flow and the per-pull link-load accounting dwarfs the
/// workflow being modeled. A padded {45, 45, 44} box models the same
/// machine with ~30-link routes; the spare volume is idle coordinates.
ClusterSpec simulate_cluster(i32 cores) {
  ClusterSpec spec = cluster_for_cores(cores);
  i32 a = 1;
  while (a * a * a < spec.num_nodes) ++a;
  const i32 c = (spec.num_nodes + a * a - 1) / (a * a);
  spec.torus = {a, a, c};
  return spec;
}

/// One weak-scaling rung: side^2 producer ranks each put a 2x2-cell
/// block (32 B), then a side^2/4-rank consumer wave pulls and verifies
/// the redistributed field, all enacted under ExecMode::kSimulate.
SimulatePoint run_simulate_point(i32 side) {
  SimulatePoint point;
  point.side = side;
  point.producer_tasks = side * side;
  point.consumer_tasks = (side / 2) * (side / 2);
  point.ranks = point.producer_tasks + point.consumer_tasks;

  const i64 extent = 2 * static_cast<i64>(side);
  Cluster cluster(simulate_cluster(point.producer_tasks));
  Metrics metrics;
  WorkflowServer server(cluster, metrics,
                        Box{{0, 0}, {extent - 1, extent - 1}});
  auto mismatches = std::make_shared<std::atomic<u64>>(0);
  server.register_app(
      app(1, "producer", {extent, extent}, {side, side}),
      make_pattern_producer({{"field"}, 1, /*sequential=*/true, 1}));
  server.register_app(
      app(2, "consumer", {extent, extent}, {side / 2, side / 2}),
      make_pattern_consumer(
          {{"field"}, 1, /*sequential=*/true, 1, mismatches, nullptr}),
      /*consumes_var=*/"field");
  DagSpec dag;
  dag.add_app(1);
  dag.add_app(2);
  dag.add_dependency(1, 2);

  WorkflowOptions options;
  options.strategy = MappingStrategy::kRoundRobin;  // mapping stays O(n)
  options.exec_mode = ExecMode::kSimulate;

  const auto t0 = std::chrono::steady_clock::now();
  server.run(dag, options);
  point.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  const SimStats& sim = server.last_sim_stats();
  point.sim_events = sim.switches;
  point.events_per_sec =
      point.wall_seconds > 0.0
          ? static_cast<double>(sim.switches) / point.wall_seconds
          : 0.0;
  point.peak_rss_bytes = sim.peak_rss_bytes;
  point.arena_bytes = sim.arena_bytes;

  const ByteCounters inter = metrics.counters(2, TrafficClass::kInterApp);
  point.inter_shm = inter.shm_bytes;
  point.inter_net = inter.net_bytes;
  point.stored_bytes = server.space().stored_bytes();
  point.mismatches = mismatches->load();
  return point;
}

int run_simulate_sweep(bool smoke, const std::string& out_path) {
  std::printf("Figure 16 (simulate mode): live weak-scaling enactment "
              "under ExecMode::kSimulate\n");
  rule(100);
  std::printf("%-6s %-9s %-9s %-9s %9s %11s %10s %9s %6s\n", "side",
              "producers", "consumers", "ranks", "wall s", "events/s",
              "peak RSS", "B/rank", "bad");
  rule(100);
  std::vector<SimulatePoint> points;
  for (const i32 side : std::vector<i32>{32, 64, 128, 256, 512, 1024}) {
    if (smoke && side > 64) break;
    const SimulatePoint p = run_simulate_point(side);
    points.push_back(p);
    std::printf("%-6d %-9d %-9d %-9d %9.2f %11.0f %8.0fMB %9.0f %6llu\n",
                p.side, p.producer_tasks, p.consumer_tasks, p.ranks,
                p.wall_seconds, p.events_per_sec,
                static_cast<double>(p.peak_rss_bytes) / (1024.0 * 1024.0),
                static_cast<double>(p.peak_rss_bytes) / p.ranks,
                static_cast<unsigned long long>(p.mismatches));
    if (p.mismatches != 0) {
      std::fprintf(stderr, "pattern verification failed\n");
      return 1;
    }
  }
  rule(100);
  std::printf("one OS thread enacted every rank; the largest rung runs "
              "%d ranks\n", points.back().ranks);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"fig16_weak_scaling_simulate\",\n"
               "  \"exec_mode\": \"kSimulate\",\n  \"smoke\": %s,\n"
               "  \"rss_budget_bytes_per_rank\": %llu,\n"
               "  \"points\": [\n",
               smoke ? "true" : "false",
               static_cast<unsigned long long>(kRssBudgetBytesPerRank));
  for (size_t i = 0; i < points.size(); ++i) {
    const SimulatePoint& p = points[i];
    std::fprintf(
        out,
        "    {\"side\": %d, \"producer_tasks\": %d, \"consumer_tasks\": %d,"
        " \"ranks\": %d, \"wall_seconds\": %.3f, \"sim_events\": %llu,"
        " \"events_per_sec\": %.0f, \"peak_rss_bytes\": %llu,"
        " \"arena_bytes\": %llu, \"inter_shm_bytes\": %llu,"
        " \"inter_net_bytes\": %llu, \"stored_bytes\": %llu,"
        " \"mismatches\": %llu}%s\n",
        p.side, p.producer_tasks, p.consumer_tasks, p.ranks, p.wall_seconds,
        static_cast<unsigned long long>(p.sim_events), p.events_per_sec,
        static_cast<unsigned long long>(p.peak_rss_bytes),
        static_cast<unsigned long long>(p.arena_bytes),
        static_cast<unsigned long long>(p.inter_shm),
        static_cast<unsigned long long>(p.inter_net),
        static_cast<unsigned long long>(p.stored_bytes),
        static_cast<unsigned long long>(p.mismatches),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool simulate = false;
  bool smoke = false;
  std::string out_path = "BENCH_simulate.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--simulate") == 0) {
      simulate = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--simulate [--smoke] [--out file.json]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (simulate) return run_simulate_sweep(smoke, out_path);

  std::printf("Figure 16: weak scaling of the data retrieve time "
              "(data-centric mapping)\n");
  rule(86);
  std::printf("%-7s %-14s %-11s %12s %12s %12s\n", "scale",
              "cores C/S", "coupled GiB", "CAP2", "SAP2", "SAP3");
  rule(86);
  for (const ScalePoint& point : weak_scaling_ladder()) {
    // Concurrent scenario at this scale.
    ScenarioConfig cc;
    cc.apps = {app(1, "CAP1", point.extents, point.producer_layout),
               app(2, "CAP2", point.extents, point.cap2_layout)};
    cc.couplings = {{1, 2}};
    cc.sequential = false;
    cc.strategy = MappingStrategy::kDataCentric;
    const i32 ccores = cc.apps[0].ntasks() + cc.apps[1].ntasks();
    cc.cluster = cluster_for_cores(ccores);
    const auto rc = run_modeled_scenario(cc);

    // Sequential scenario at this scale.
    ScenarioConfig sc;
    sc.apps = {app(1, "SAP1", point.extents, point.producer_layout),
               app(2, "SAP2", point.extents, point.sap2_layout),
               app(3, "SAP3", point.extents, point.sap3_layout)};
    sc.couplings = {{1, 2}, {1, 3}};
    sc.sequential = true;
    sc.strategy = MappingStrategy::kDataCentric;
    sc.cluster = cluster_for_cores(sc.apps[0].ntasks());
    const auto rs = run_modeled_scenario(sc);

    const u64 coupled = rc.apps.at(2).inter_total() +
                        rs.apps.at(2).inter_total() +
                        rs.apps.at(3).inter_total();
    char cores[32];
    std::snprintf(cores, sizeof(cores), "%d/%d",
                  cc.apps[0].ntasks() + cc.apps[1].ntasks(),
                  sc.apps[1].ntasks() + sc.apps[2].ntasks());
    std::printf("%-7d %-14s %11.1f %12s %12s %12s\n", point.factor, cores,
                gib(coupled), format_seconds(rc.apps.at(2).retrieve_time).c_str(),
                format_seconds(rs.apps.at(2).retrieve_time).c_str(),
                format_seconds(rs.apps.at(3).retrieve_time).c_str());
  }
  rule(86);
  std::printf("paper: only a small retrieve-time increase over a 16x data "
              "growth;\n       SAP2/SAP3 grow faster than CAP2 at scale\n");
  return 0;
}
