// Heartbeat-driven health monitoring on the deterministic virtual clock
// (docs/FAULT_MODEL.md "Failure detection"). Every node emits one
// heartbeat to the workflow server per detection round; the monitor asks
// the fault injector for each heartbeat's fate (delivered / delayed /
// dropped / source crashed), accounts delivered traffic through the
// HybridDart record() funnel, feeds a phi-accrual FailureDetector, and
// hands the engine *verdicts* — the engine never reads the injector's
// crash schedule.
//
// Sweeps are lazy: detection rounds run only when the engine observed
// task failures (or when earlier suspicion is still unsettled at a wave
// boundary). A clean run performs zero sweeps and emits zero heartbeat
// bytes, which keeps the golden-ledger/trace invariants bit-identical
// with the health layer attached.
#pragma once

#include "dart/dart.hpp"
#include "health/detector.hpp"

namespace cods {

struct HealthConfig {
  DetectorConfig detector;
  /// Budget of heartbeat rounds one detection pass may sweep before
  /// giving up (bounds the modelled detection time).
  i32 max_detection_rounds = 64;
  /// Straggler mitigation: a task is a straggler when its modelled time
  /// exceeds `straggler_multiplier` x the wave median. Speculative
  /// re-execution of stragglers is opt-in — it requires subroutines that
  /// derive their work purely from ctx.task (no intra-app collectives).
  double straggler_multiplier = 3.0;
  bool speculation = false;
  /// CodsSpace byte watermarks (0 = disabled): above `soft_watermark`
  /// every put pays a modelled backpressure delay; above `hard_watermark`
  /// puts are shed with a typed OverloadError.
  u64 soft_watermark = 0;
  u64 hard_watermark = 0;
};

class HealthMonitor {
 public:
  /// `dart` carries heartbeat accounting (its record() funnel) and the
  /// cost model used to time rounds; `num_nodes` fixes the cohort.
  HealthMonitor(HealthConfig config, FaultInjector& injector,
                HybridDart& dart, i32 num_nodes);

  const HealthConfig& config() const { return config_; }
  const FailureDetector& detector() const { return detector_; }

  /// Runs detection rounds until suspicion resolves (every node is either
  /// settled-alive or declared dead) or the round budget runs out.
  /// Returns the nodes newly declared dead, ascending. Idempotent for
  /// already-confirmed deaths.
  std::vector<i32> run_detection();

  /// Wave-boundary settling: sweeps only while earlier suspicion is still
  /// unsettled (quarantine/probation), letting recovered nodes earn
  /// readmission. No-op — zero heartbeat traffic — on clean runs.
  void settle();

  /// Nodes confirmed dead by detection so far, ascending.
  std::vector<i32> confirmed_dead() const;

  /// Nodes currently too suspicious to map tasks onto (quarantined or
  /// still serving probation), ascending.
  std::vector<i32> untrusted() const;

  /// Rounds swept by the most recent run_detection().
  i32 last_detection_rounds() const { return last_rounds_; }

  /// Worst observed detection latency of the most recent run_detection():
  /// virtual seconds between a declared-dead node's first missed
  /// heartbeat and its declaration. 0 when nothing was declared.
  double last_detection_latency() const { return last_latency_; }

  /// The monitor's virtual clock (advances one heartbeat period per
  /// swept round).
  double now() const { return now_; }

 private:
  void sweep_round();

  HealthConfig config_;
  FaultInjector* injector_;
  HybridDart* dart_;
  FailureDetector detector_;
  double now_ = 0.0;
  i64 round_ = 0;
  std::vector<bool> confirmed_;
  i32 last_rounds_ = 0;
  double last_latency_ = 0.0;
  Metrics::CounterId heartbeats_id_;
  Metrics::CounterId dropped_id_;
  Metrics::CounterId rounds_id_;
  Metrics::CounterId latency_id_;
};

}  // namespace cods
