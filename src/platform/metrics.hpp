// Byte-exact accounting of every data movement in the framework, split by
// transport (shared memory vs network) and by class (inter-application
// coupling vs intra-application exchange). These counters are the ground
// truth behind the reproduction of the paper's Figures 8, 9 and 12-15.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "platform/cluster.hpp"

namespace cods {

/// Which kind of traffic a transfer belongs to.
enum class TrafficClass { kInterApp, kIntraApp, kControl };

/// Aggregated byte counters for one (app, class) key.
struct ByteCounters {
  u64 shm_bytes = 0;
  u64 net_bytes = 0;
  u64 transfers = 0;

  u64 total() const { return shm_bytes + net_bytes; }
};

/// Thread-safe metrics registry. One instance is shared by the transport
/// layer, the CoDS clients and the benchmarks of a given experiment run.
class Metrics {
 public:
  /// Records one transfer attributed to the *receiving* application
  /// (receiver-driven pull: the consumer pays for its data).
  void record(i32 app_id, TrafficClass cls, u64 bytes, bool via_network);

  /// Accumulates wall/model time for a named phase of an application.
  void add_time(i32 app_id, const std::string& phase, double seconds);

  /// Named event counters (e.g. "fault.retries", "fault.recovery_bytes"):
  /// free-form robustness/diagnostic accounting next to the byte ledger.
  void add_count(i32 app_id, const std::string& name, u64 n = 1);
  u64 count(i32 app_id, const std::string& name) const;
  /// Sum of one named counter across all apps.
  u64 total_count(const std::string& name) const;

  ByteCounters counters(i32 app_id, TrafficClass cls) const;
  double time(i32 app_id, const std::string& phase) const;

  /// Sum across all apps for one traffic class.
  ByteCounters total(TrafficClass cls) const;

  /// Sum of network bytes across all apps and classes.
  u64 total_net_bytes() const;

  void reset();

  std::string report() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<i32, TrafficClass>, ByteCounters> counters_;
  std::map<std::pair<i32, std::string>, double> times_;
  std::map<std::pair<i32, std::string>, u64> event_counts_;
};

}  // namespace cods
