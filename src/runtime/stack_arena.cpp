#include "runtime/stack_arena.hpp"

#include <new>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define CODS_ARENA_MMAP 1
#endif

#if defined(CODS_ARENA_MMAP) && !defined(MAP_NORESERVE)
#define MAP_NORESERVE 0
#endif

namespace cods {

namespace {

std::size_t host_page_bytes() {
#if defined(CODS_ARENA_MMAP)
  const long page = sysconf(_SC_PAGESIZE);
  if (page > 0) return static_cast<std::size_t>(page);
#endif
  return 4096;
}

std::size_t round_up(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

}  // namespace

StackArena::StackArena(std::size_t stack_bytes)
    : page_bytes_(host_page_bytes()),
      stack_bytes_(round_up(std::max<std::size_t>(stack_bytes, page_bytes_),
                            page_bytes_)),
      slot_bytes_(page_bytes_ + stack_bytes_) {}

StackArena::~StackArena() {
  for (Slab& slab : slabs_) {
    if (slab.mapped) {
#if defined(CODS_ARENA_MMAP)
      munmap(slab.base, slab.bytes);
#endif
    } else {
      ::operator delete[](slab.base, std::align_val_t{64});
    }
  }
}

StackArena::Slab& StackArena::grow() {
  Slab slab;
  slab.guarded = static_cast<std::size_t>(slots_) < kGuardedSlots;
  slab.slots = slab.guarded ? kSlotsPerSlab : kSlotsPerPlainSlab;
  slab.bytes = slab.slots * slot_bytes_;
#if defined(CODS_ARENA_MMAP)
  // Guarded slabs start PROT_NONE and get their stack pages unprotected
  // slot by slot; unguarded slabs are read/write up front so carving
  // never splits the mapping (one VMA per slab, however many slots).
  const int prot = slab.guarded ? PROT_NONE : (PROT_READ | PROT_WRITE);
  const int flags =
      MAP_PRIVATE | MAP_ANONYMOUS | (slab.guarded ? 0 : MAP_NORESERVE);
  void* base = mmap(nullptr, slab.bytes, prot, flags, -1, 0);
  if (base != MAP_FAILED) {
    slab.base = static_cast<std::byte*>(base);
    slab.mapped = true;
    slabs_.push_back(slab);
    return slabs_.back();
  }
#endif
  // Fallback: one heap block per would-be slab, no guard protection (the
  // guard page offsets are still skipped so slot layout is identical).
  slab.base = static_cast<std::byte*>(
      ::operator new[](slab.bytes, std::align_val_t{64}));
  slab.mapped = false;
  slab.guarded = false;
  slabs_.push_back(slab);
  return slabs_.back();
}

std::byte* StackArena::acquire() {
  if (!free_.empty()) {
    std::byte* stack = free_.back();
    free_.pop_back();
    return stack;
  }
  if (slabs_.empty() || slabs_.back().carved == slabs_.back().slots) grow();
  Slab& slab = slabs_.back();
  std::byte* slot = slab.base + slab.carved * slot_bytes_;
  std::byte* stack = slot + page_bytes_;  // skip the guard page
  if (slab.guarded) {
#if defined(CODS_ARENA_MMAP)
    CODS_CHECK(mprotect(stack, stack_bytes_, PROT_READ | PROT_WRITE) == 0,
               "stack arena: mprotect failed");
#endif
    ++guarded_slots_;
  }
  ++slab.carved;
  ++slots_;
  return stack;
}

void StackArena::release(std::byte* stack) {
  // The slot stays writable: the next acquire reuses it without another
  // protection change, and its already-resident pages carry over.
  free_.push_back(stack);
}

}  // namespace cods
