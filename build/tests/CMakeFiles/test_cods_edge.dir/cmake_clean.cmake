file(REMOVE_RECURSE
  "CMakeFiles/test_cods_edge.dir/core/test_cods_edge.cpp.o"
  "CMakeFiles/test_cods_edge.dir/core/test_cods_edge.cpp.o.d"
  "test_cods_edge"
  "test_cods_edge.pdb"
  "test_cods_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cods_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
