#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/dht.hpp"
#include "sfc/curve.hpp"

namespace cods {
namespace {

class DhtTest : public ::testing::Test {
 protected:
  DhtTest()
      : cluster_(ClusterSpec{.num_nodes = 8, .cores_per_node = 4}),
        dht_(cluster_, SfcCurve(CurveKind::kHilbert, 2, 5)) {}

  DataLocation loc(const Box& box, i32 client, u64 key) {
    DataLocation l;
    l.box = box;
    l.owner_client = client;
    l.owner_loc = CoreLoc{client % 8, 0};
    l.window_key = key;
    return l;
  }

  Cluster cluster_;
  CodsDht dht_;
};

TEST_F(DhtTest, IndexSpaceCoversAllNodes) {
  EXPECT_EQ(dht_.num_dht_cores(), 8);
  // Every curve index has exactly one owner, intervals are contiguous.
  u64 expected_lo = 0;
  for (i32 n = 0; n < 8; ++n) {
    const IndexSpan span = dht_.node_interval(n);
    EXPECT_EQ(span.lo, expected_lo);
    EXPECT_GE(span.hi, span.lo);
    EXPECT_EQ(dht_.owner_node(span.lo), n);
    EXPECT_EQ(dht_.owner_node(span.hi), n);
    expected_lo = span.hi + 1;
  }
  EXPECT_EQ(expected_lo, dht_.curve().size());
}

TEST_F(DhtTest, OwnerNodesOfFullDomainIsEveryone) {
  const Box whole{{0, 0}, {31, 31}};
  const auto nodes = dht_.owner_nodes(whole);
  EXPECT_EQ(nodes.size(), 8u);
}

TEST_F(DhtTest, SmallBoxHitsFewNodes) {
  const Box small{{3, 3}, {4, 4}};
  const auto nodes = dht_.owner_nodes(small);
  EXPECT_GE(nodes.size(), 1u);
  EXPECT_LE(nodes.size(), 3u);
}

TEST_F(DhtTest, InsertThenQueryFindsRecord) {
  const Box box{{0, 0}, {7, 7}};
  dht_.insert("temp", 1, loc(box, 3, 99));
  const auto result = dht_.query("temp", 1, Box{{2, 2}, {5, 5}});
  ASSERT_EQ(result.locations.size(), 1u);
  EXPECT_EQ(result.locations[0].owner_client, 3);
  EXPECT_EQ(result.locations[0].window_key, 99u);
  EXPECT_FALSE(result.dht_nodes.empty());
}

TEST_F(DhtTest, QueryHonorsVersionAndName) {
  const Box box{{0, 0}, {7, 7}};
  dht_.insert("temp", 1, loc(box, 3, 99));
  EXPECT_TRUE(dht_.query("temp", 2, box).locations.empty());
  EXPECT_TRUE(dht_.query("velocity", 1, box).locations.empty());
}

TEST_F(DhtTest, QueryIgnoresNonOverlappingRecords) {
  dht_.insert("v", 1, loc(Box{{0, 0}, {7, 7}}, 1, 1));
  dht_.insert("v", 1, loc(Box{{16, 16}, {23, 23}}, 2, 2));
  const auto result = dht_.query("v", 1, Box{{0, 0}, {3, 3}});
  ASSERT_EQ(result.locations.size(), 1u);
  EXPECT_EQ(result.locations[0].owner_client, 1);
}

TEST_F(DhtTest, SpanningRecordDeduplicated) {
  // A region spanning many DHT intervals is registered with each owner but
  // must come back exactly once.
  const Box wide{{0, 0}, {31, 15}};
  dht_.insert("v", 1, loc(wide, 5, 42));
  const auto result = dht_.query("v", 1, wide);
  EXPECT_EQ(result.locations.size(), 1u);
  EXPECT_GT(result.dht_nodes.size(), 1u);
}

TEST_F(DhtTest, ManyProducersCoverDomain) {
  // 16 producers each own an 8x8 tile of the 32x32 domain.
  int inserted = 0;
  for (i64 ty = 0; ty < 4; ++ty) {
    for (i64 tx = 0; tx < 4; ++tx) {
      const Box tile{{ty * 8, tx * 8}, {ty * 8 + 7, tx * 8 + 7}};
      dht_.insert("field", 3, loc(tile, inserted, 1000 + inserted));
      ++inserted;
    }
  }
  // Query the whole domain: every tile must be found.
  const auto all = dht_.query("field", 3, Box{{0, 0}, {31, 31}});
  EXPECT_EQ(all.locations.size(), 16u);
  // Query one tile's interior: exactly one record.
  const auto one = dht_.query("field", 3, Box{{9, 9}, {14, 14}});
  ASSERT_EQ(one.locations.size(), 1u);
  EXPECT_EQ(one.locations[0].box, (Box{{8, 8}, {15, 15}}));
  // Query a 2x2 tile neighbourhood crossing tile borders.
  const auto four = dht_.query("field", 3, Box{{6, 6}, {9, 9}});
  EXPECT_EQ(four.locations.size(), 4u);
}

TEST_F(DhtTest, RetireRemovesRecords) {
  const Box box{{0, 0}, {7, 7}};
  dht_.insert("v", 1, loc(box, 1, 1));
  dht_.insert("v", 2, loc(box, 1, 2));
  EXPECT_GT(dht_.retire("v", 1), 0);
  EXPECT_TRUE(dht_.query("v", 1, box).locations.empty());
  EXPECT_EQ(dht_.query("v", 2, box).locations.size(), 1u);
  EXPECT_EQ(dht_.retire("v", 1), 0);  // idempotent
}

TEST_F(DhtTest, HilbertBalancesRecordsAcrossCores) {
  // Insert a uniform grid of small regions; Hilbert linearization should
  // spread them over the DHT cores instead of piling onto one.
  for (i64 y = 0; y < 32; y += 4) {
    for (i64 x = 0; x < 32; x += 4) {
      dht_.insert("u", 0, loc(Box{{y, x}, {y + 3, x + 3}}, 0, 0));
    }
  }
  i64 nonempty = 0;
  for (i32 n = 0; n < 8; ++n) {
    if (dht_.node_record_count(n) > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 8);
}

TEST_F(DhtTest, CoarseGranularityStillFindsData) {
  CodsDht coarse(cluster_, SfcCurve(CurveKind::kHilbert, 2, 5),
                 /*granularity_log2=*/2);
  const Box box{{5, 5}, {9, 9}};
  DataLocation l = loc(box, 4, 77);
  coarse.insert("v", 1, l);
  const auto result = coarse.query("v", 1, Box{{6, 6}, {7, 7}});
  ASSERT_EQ(result.locations.size(), 1u);
}

/// Reference implementation of owner_nodes, the per-call std::set
/// version the merge-based build replaced. The new build must stay
/// element-for-element identical (ascending, unique).
std::vector<i32> owner_nodes_via_set(const CodsDht& dht, const Box& box,
                                     int granularity_log2) {
  std::set<i32> nodes;
  for (const IndexSpan& span :
       box_spans(dht.curve(), box, granularity_log2)) {
    for (u64 idx = span.lo; idx <= span.hi; ++idx) {
      nodes.insert(dht.owner_node(idx));
    }
  }
  return std::vector<i32>(nodes.begin(), nodes.end());
}

TEST_F(DhtTest, OwnerNodesMatchSetBasedReference) {
  CodsDht coarse(cluster_, SfcCurve(CurveKind::kHilbert, 2, 5),
                 /*granularity_log2=*/2);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const i64 y0 = static_cast<i64>(rng() % 32);
    const i64 x0 = static_cast<i64>(rng() % 32);
    const i64 y1 = y0 + static_cast<i64>(rng() % (32 - y0));
    const i64 x1 = x0 + static_cast<i64>(rng() % (32 - x0));
    const Box box{{y0, x0}, {y1, x1}};
    EXPECT_EQ(dht_.owner_nodes(box),
              owner_nodes_via_set(dht_, box, /*granularity_log2=*/0))
        << "trial " << trial << " box " << y0 << "," << x0 << ".." << y1
        << "," << x1;
    EXPECT_EQ(coarse.owner_nodes(box),
              owner_nodes_via_set(coarse, box, /*granularity_log2=*/2))
        << "trial " << trial << " (coarse)";
  }
}

TEST_F(DhtTest, InsertEmptyBoxRejected) {
  DataLocation l = loc(Box{{5, 5}, {4, 4}}, 0, 0);
  EXPECT_THROW(dht_.insert("v", 0, l), Error);
}

}  // namespace
}  // namespace cods
