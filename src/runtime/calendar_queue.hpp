// Calendar-queue ready structure for the discrete-event engine
// (docs/SIMULATION.md "Scaling to 1M ranks").
//
// A calendar queue (Brown, CACM 1988) buckets pending events by virtual
// "day" (floor(vtime / width)); a pop scans forward from the current day
// and an insert drops into its day's bucket, so both are O(1) amortized
// when events spread over the calendar — against O(log n) for the binary
// heap it replaces, which at 10^6 ready fibers is the event loop's
// dominant constant. Two deviations from the textbook structure keep the
// worst case tame and the order exact:
//
//   * Each bucket is itself a small binary min-heap on (vtime, seq), not
//     a sorted list. A degenerate distribution (every fiber ready at the
//     same instant — the first dispatch wave of every enactment) then
//     costs exactly what the plain heap did, never more.
//   * Pop order is the same strict (vtime, seq) total order as the heap:
//     same-vtime events share a bucket by construction, and the seq
//     tie-break makes the order deterministic. test_calendar_queue pins
//     pop-for-pop equivalence against the heap oracle
//     (SimReadyQueue::kBinaryHeap) over seeded interleavings.
//
// The queue is *not* monotone: a notified fiber can re-enter with a
// vtime earlier than the scan cursor (its virtual clock lags the fibers
// that ran ahead), so push() moves the cursor back whenever an earlier
// day appears. Bucket count doubles above 2 events/bucket and halves
// below 1/2, re-estimating the day width from the live vtime range;
// a bucket that degenerates into a heap triggers the same rebuild.
//
// Single-threaded by design, like the engine that owns it.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cods {

/// Ready-queue key: (virtual time, FIFO sequence) — a deterministic
/// total order, so one seed replays one schedule on any host.
struct ReadyItem {
  double vtime = 0.0;
  u64 seq = 0;
  i32 index = -1;
};

/// Comparator ordering a later to run item *after* an earlier one; both
/// the calendar's bucket heaps and the oracle std::priority_queue use it,
/// so "min" means the same thing in both structures.
struct ReadyAfter {
  bool operator()(const ReadyItem& a, const ReadyItem& b) const {
    if (a.vtime != b.vtime) return a.vtime > b.vtime;
    return a.seq > b.seq;
  }
};

class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kMinBuckets) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(ReadyItem item) {
    if (size_ + 1 > buckets_.size() * 2) rebuild(buckets_.size() * 2);
    const u64 day = day_of(item.vtime);
    Bucket& b = buckets_[static_cast<std::size_t>(day) & mask()];
    b.push_back(item);
    std::push_heap(b.begin(), b.end(), ReadyAfter{});
    // Non-monotone insert: an event earlier than the scan cursor must
    // pull the cursor back or pop() would skip it for a whole lap.
    if (size_ == 0 || day < cur_day_) cur_day_ = day;
    ++size_;
    ++ops_since_rebuild_;
  }

  /// Removes and returns the minimum (vtime, seq) event. REQUIRES
  /// !empty().
  ReadyItem pop() {
    CODS_CHECK(size_ > 0, "calendar queue popped empty");
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::size_t n = buckets_.size();
      for (std::size_t probes = 0; probes < n; ++probes) {
        Bucket& b = buckets_[static_cast<std::size_t>(cur_day_) & mask()];
        // The heap top is the bucket minimum; any event of the current
        // day in this bucket beats every event of a later day (other
        // buckets) and every same-bucket event of a later year.
        if (!b.empty() && day_of(b.front().vtime) == cur_day_) {
          return take_top(b);
        }
        ++cur_day_;
      }
      // A whole year with no event while the queue is non-empty is
      // definitive evidence the width is stale for the live
      // distribution (a rebuild while every vtime sat in one dense
      // cluster estimates a microscopic width; once the cluster drains,
      // the survivors are thousands of "days" apart and every scan goes
      // the full year). Do NOT just jump the cursor to the earliest
      // bucket top: that leaves the width stale, and at 2^20 buckets an
      // O(buckets) crawl per pop turns the 1M-rank sweep into hours.
      // Re-estimate instead — the rebuild re-spreads the live range at
      // ~4 events/day and parks the cursor on the minimum's day, so the
      // retry hits on its first probe. An empty year then needs the
      // live range to shift by ~2x between rebuilds, which keeps the
      // O(size) rebuild amortized.
      rebuild(buckets_.size());
    }
    CODS_CHECK(false, "calendar queue lost an event");
    return ReadyItem{};  // unreachable
  }

  /// Bucket-array rebuilds so far (resize in either direction or a
  /// width re-estimate); the property suite drives the thresholds.
  u64 rebuilds() const { return rebuilds_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  double width() const { return width_; }

 private:
  using Bucket = std::vector<ReadyItem>;

  static constexpr std::size_t kMinBuckets = 8;  // power of two
  static constexpr double kMinWidth = 1e-12;
  /// A current-day bucket deeper than this (and holding a quarter of the
  /// queue) means the width is stale for the live distribution.
  static constexpr std::size_t kOverfullBucket = 64;

  std::size_t mask() const { return buckets_.size() - 1; }

  u64 day_of(double vtime) const {
    if (vtime <= 0.0) return 0;
    const double day = vtime / width_;
    // Clamp instead of overflowing the u64 day counter; events this far
    // out all share the last day and fall back to heap order there.
    if (day >= 9.0e18) return u64{9000000000000000000u};
    return static_cast<u64>(day);
  }

  ReadyItem take_top(Bucket& b) {
    std::pop_heap(b.begin(), b.end(), ReadyAfter{});
    const ReadyItem item = b.back();
    const std::size_t depth = b.size();
    b.pop_back();
    --size_;
    ++ops_since_rebuild_;
    if (size_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
      rebuild(buckets_.size() / 2);
    } else if (depth > kOverfullBucket && depth * 4 > size_ &&
               ops_since_rebuild_ > size_) {
      // Degenerate bucket: re-estimate the width in place. The ops gate
      // keeps an irreducibly clustered distribution (all events at one
      // instant) from rebuilding every pop.
      rebuild(buckets_.size());
    }
    return item;
  }

  void rebuild(std::size_t nbuckets) {
    nbuckets = std::max(nbuckets, kMinBuckets);
    Bucket all;
    all.reserve(size_);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (Bucket& b : buckets_) {
      for (const ReadyItem& item : b) {
        lo = std::min(lo, item.vtime);
        hi = std::max(hi, item.vtime);
        all.push_back(item);
      }
    }
    // Width targets ~4 events per day over the live range: wide enough
    // that a pop rarely crosses empty days, narrow enough that a day's
    // heap stays shallow. Equal-vtime extremes leave any width correct;
    // pick 1s so the calendar re-spreads as soon as clocks diverge.
    width_ = (size_ > 1 && hi > lo)
                 ? std::max(hi - lo, kMinWidth) * 4.0 /
                       static_cast<double>(size_)
                 : 1.0;
    buckets_.assign(nbuckets, Bucket{});
    for (const ReadyItem& item : all) {
      buckets_[static_cast<std::size_t>(day_of(item.vtime)) & mask()]
          .push_back(item);
    }
    for (Bucket& b : buckets_) std::make_heap(b.begin(), b.end(), ReadyAfter{});
    cur_day_ = size_ > 0 ? day_of(lo) : 0;
    ops_since_rebuild_ = 0;
    ++rebuilds_;
  }

  std::vector<Bucket> buckets_;  // each kept as a min-heap via ReadyAfter
  double width_ = 1.0;
  u64 cur_day_ = 0;
  std::size_t size_ = 0;
  u64 ops_since_rebuild_ = 0;
  u64 rebuilds_ = 0;
};

}  // namespace cods
