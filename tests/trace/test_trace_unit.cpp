// Unit tests of the tracing subsystem itself (src/trace/): recorder and
// ring mechanics, virtual-clock span semantics, the Chrome trace_event
// export, and the critical-path analyzer on hand-built span streams.
// Workflow-level integration lives in test_golden_trace.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "trace/critical_path.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace cods {
namespace {

constexpr u64 kTrack = 7;
constexpr u64 id_of(u64 track, u64 seq) {
  return (track << TraceRecorder::kSeqBits) | seq;
}

TEST(TraceUnit, CategoryNamesAndLocPacking) {
  EXPECT_STREQ(to_string(SpanCategory::kWave), "wave");
  EXPECT_STREQ(to_string(SpanCategory::kTask), "task");
  EXPECT_STREQ(to_string(SpanCategory::kGet), "get");
  EXPECT_STREQ(to_string(SpanCategory::kPut), "put");
  EXPECT_STREQ(to_string(SpanCategory::kPull), "pull");
  EXPECT_STREQ(to_string(SpanCategory::kRpc), "rpc");
  EXPECT_STREQ(to_string(SpanCategory::kCollective), "collective");
  EXPECT_STREQ(to_string(SpanCategory::kRedistribute), "redistribute");
  EXPECT_STREQ(to_string(SpanCategory::kLockWait), "lock_wait");
  EXPECT_STREQ(to_string(SpanCategory::kTransferShm), "transfer_shm");
  EXPECT_STREQ(to_string(SpanCategory::kTransferNet), "transfer_net");
  EXPECT_STREQ(to_string(SpanCategory::kRecv), "recv");
  // Node -1 (the server) packs to core field only; distinct locations
  // pack distinctly.
  EXPECT_EQ(pack_loc(-1, -1), 0u);
  EXPECT_NE(pack_loc(0, 0), pack_loc(0, 1));
  EXPECT_NE(pack_loc(0, 0), pack_loc(1, 0));
}

TEST(TraceUnit, RankTrackPackingHasNoCollisionsAtMillionRanks) {
  // The engine keys one track per (wave, attempt, rank). The old
  // (<<24 | <<16) packing wrapped the 16-bit rank field at 65,536 ranks,
  // so rank 65,536 attempt 0 collided with rank 0 attempt 1. The widened
  // fields must keep every coordinate distinct through the 1,310,720-rank
  // weak-scaling point.
  const i32 kMaxRank = (1 << kTraceRankBits) - 1;  // 2,097,151
  EXPECT_GT(kMaxRank, 1310719) << "rank field too narrow for the 1M bench";

  // Boundary pairs that collided under the old scheme.
  EXPECT_NE(pack_rank_track(0, 0, 65536), pack_rank_track(0, 1, 0));
  EXPECT_NE(pack_rank_track(0, 0, 1 << 20), pack_rank_track(1, 0, 0));
  EXPECT_NE(pack_rank_track(0, 0, 1048576), pack_rank_track(0, 4, 0));

  // Adjacent coordinates stay adjacent in exactly one field.
  EXPECT_EQ(pack_rank_track(0, 0, 1048576) - pack_rank_track(0, 0, 1048575),
            1u);
  EXPECT_EQ(pack_rank_track(0, 1, 0) - pack_rank_track(0, 0, kMaxRank), 1u);

  // The maximal key the engine can produce still fits acquire_track's
  // 44-bit budget (64 - kSeqBits), with the max wave index that the
  // static_assert's 15 remaining bits allow.
  const i64 kMaxWave = (1 << (64 - TraceRecorder::kSeqBits -
                              kTraceAttemptBits - kTraceRankBits)) -
                       2;  // wave field stores wave_index + 1
  const u64 top = pack_rank_track(kMaxWave, (1 << kTraceAttemptBits) - 1,
                                  kMaxRank);
  EXPECT_LT(top, u64{1} << (64 - TraceRecorder::kSeqBits));
  TraceRecorder rec;
  EXPECT_NO_THROW({
    TraceContext ctx(rec, top, 0.0, 0, 0, 0, 0);  // inside the key budget
  });

  // Task-span details carry (app, rank) without aliasing at 1M ranks.
  EXPECT_NE(pack_task_detail(0, 1048576), pack_task_detail(1, 0));
  EXPECT_NE(pack_task_detail(1, 1048576), pack_task_detail(1, 1048575));
}

TEST(TraceUnit, MillionRankTrackIdsRoundTrip) {
  // A track at the widened key's rank boundary still mints ids as
  // (key << kSeqBits) | seq.
  const u64 key = pack_rank_track(2, 1, 1310719);
  TraceRecorder rec;
  TraceContext ctx(rec, key, 0.0, 0, 1, 0, 0);
  const u64 id = ctx.begin(SpanCategory::kTask);
  ctx.end();
  EXPECT_EQ(id >> TraceRecorder::kSeqBits, key);
  EXPECT_EQ(id & ((u64{1} << TraceRecorder::kSeqBits) - 1), 1u);
}

TEST(TraceUnit, IdsAreTrackShiftedSequence) {
  TraceRecorder rec;
  TraceContext ctx(rec, kTrack, 0.0, 0, 1, 2, 3);
  const u64 a = ctx.begin(SpanCategory::kGet);
  ctx.end();
  const u64 b = ctx.begin(SpanCategory::kPut);
  ctx.end();
  EXPECT_EQ(a, id_of(kTrack, 1));
  EXPECT_EQ(b, id_of(kTrack, 2));
}

TEST(TraceUnit, SequentialLeafAdvancesClockOverlayDoesNot) {
  TraceRecorder rec;
  TraceContext ctx(rec, kTrack, 10.0, 0, 1, 0, 0);
  ctx.leaf(SpanCategory::kTransferShm, 2.0, 100, TrafficClass::kInterApp, 1,
           /*sequential=*/true);
  EXPECT_DOUBLE_EQ(ctx.clock(), 12.0);
  ctx.leaf(SpanCategory::kTransferNet, 5.0, 200, TrafficClass::kInterApp, 1,
           /*sequential=*/false);
  EXPECT_DOUBLE_EQ(ctx.clock(), 12.0);  // overlay shares the interval

  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].begin, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].duration, 2.0);
  EXPECT_TRUE(spans[0].flags & TraceFlags::kSequential);
  EXPECT_FALSE(spans[1].flags & TraceFlags::kSequential);
  EXPECT_EQ(spans[0].node, 0);
  EXPECT_EQ(spans[0].core, 0);
}

TEST(TraceUnit, ContainerCoversChildrenAndExplicitTotal) {
  TraceRecorder rec;
  TraceContext ctx(rec, kTrack, 0.0, 0, 1, 0, 0);
  // Children advance 2.0; an explicit total of 1.0 must not shrink the
  // container below its children.
  const u64 outer = ctx.begin(SpanCategory::kGet);
  ctx.leaf(SpanCategory::kTransferShm, 2.0, 8, TrafficClass::kInterApp, 1,
           true);
  ctx.end(/*total=*/1.0);
  // An explicit total larger than the child advance extends the span.
  const u64 tall = ctx.begin(SpanCategory::kRpc);
  ctx.end(/*total=*/5.0);

  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const TraceSpan* outer_span = nullptr;
  const TraceSpan* tall_span = nullptr;
  for (const TraceSpan& s : spans) {
    if (s.id == outer) outer_span = &s;
    if (s.id == tall) tall_span = &s;
  }
  ASSERT_NE(outer_span, nullptr);
  ASSERT_NE(tall_span, nullptr);
  EXPECT_DOUBLE_EQ(outer_span->duration, 2.0);
  EXPECT_DOUBLE_EQ(tall_span->begin, 2.0);
  EXPECT_DOUBLE_EQ(tall_span->duration, 5.0);
}

TEST(TraceUnit, NestedSpansRecordParentChain) {
  TraceRecorder rec;
  TraceContext ctx(rec, kTrack, 0.0, /*root_parent=*/42, 1, 0, 0);
  const u64 outer = ctx.begin(SpanCategory::kTask);
  const u64 inner = ctx.begin(SpanCategory::kGet);
  ctx.leaf(SpanCategory::kTransferShm, 1.0, 4, TrafficClass::kInterApp, 1,
           true);
  ctx.end();
  ctx.end();

  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (const TraceSpan& s : spans) {
    if (s.id == outer) {
      EXPECT_EQ(s.parent, 42u);
    }
    if (s.id == inner) {
      EXPECT_EQ(s.parent, outer);
    }
    if (s.cat == SpanCategory::kTransferShm) {
      EXPECT_EQ(s.parent, inner);
    }
  }
}

TEST(TraceUnit, InstantHasZeroDurationAndFlag) {
  TraceRecorder rec;
  TraceContext ctx(rec, kTrack, 3.0, 0, 1, 0, 0);
  ctx.instant(SpanCategory::kRecv, 64, 5);
  EXPECT_DOUBLE_EQ(ctx.clock(), 3.0);
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].duration, 0.0);
  EXPECT_TRUE(spans[0].flags & TraceFlags::kInstant);
  EXPECT_EQ(spans[0].bytes, 64u);
  EXPECT_EQ(spans[0].detail, 5u);
}

TEST(TraceUnit, DestructorClosesLeftoverSpans) {
  TraceRecorder rec;
  {
    TraceContext ctx(rec, kTrack, 0.0, 0, 1, 0, 0);
    ctx.begin(SpanCategory::kTask);
    ctx.begin(SpanCategory::kGet);
    // A task that throws leaves spans open; the context must still emit
    // them so the exported stream stays well formed.
  }
  EXPECT_EQ(TraceContext::current(), nullptr);
  EXPECT_EQ(rec.snapshot().size(), 2u);
}

TEST(TraceUnit, ContextsNestAndRestore) {
  TraceRecorder rec;
  EXPECT_EQ(TraceContext::current(), nullptr);
  {
    TraceContext outer(rec, 1, 0.0, 0, 1, 0, 0);
    EXPECT_EQ(TraceContext::current(), &outer);
    {
      TraceContext inner(rec, 2, 0.0, 0, 2, 0, 1);
      EXPECT_EQ(TraceContext::current(), &inner);
    }
    EXPECT_EQ(TraceContext::current(), &outer);
  }
  EXPECT_EQ(TraceContext::current(), nullptr);
}

TEST(TraceUnit, TinyRingNeverDropsSpans) {
  TraceRecorder rec(/*ring_capacity=*/2);
  TraceContext ctx(rec, kTrack, 0.0, 0, 1, 0, 0);
  for (int i = 0; i < 100; ++i) {
    ctx.leaf(SpanCategory::kTransferShm, 0.001, static_cast<u64>(i),
             TrafficClass::kIntraApp, 1, true);
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 100u);  // overflow drained, nothing lost
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].bytes, static_cast<u64>(i));  // snapshot is id-sorted
  }
}

TEST(TraceUnit, ResumedTrackKeepsSequenceAndClockResets) {
  TraceRecorder rec;
  u64 first;
  {
    TraceContext ctx(rec, kTrack, 0.0, 0, 1, 0, 0);
    first = ctx.begin(SpanCategory::kTask);
    ctx.end(1.0);
  }
  {
    TraceContext ctx(rec, kTrack, 0.0, 0, 1, 0, 0);
    EXPECT_DOUBLE_EQ(ctx.clock(), 0.0);  // start_clock repositions
    const u64 second = ctx.begin(SpanCategory::kTask);
    ctx.end(1.0);
    EXPECT_GT(second, first);  // seq resumed: ids never reused
  }
  EXPECT_EQ(rec.snapshot().size(), 2u);
}

TEST(TraceUnit, MaxEndWithParentFallsBack) {
  TraceRecorder rec;
  TraceContext ctx(rec, kTrack, 0.0, /*root_parent=*/9, 1, 0, 0);
  ctx.begin(SpanCategory::kTask);
  ctx.end(2.5);
  rec.flush();
  EXPECT_DOUBLE_EQ(rec.max_end_with_parent(9, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(rec.max_end_with_parent(1234, 7.0), 7.0);
  EXPECT_EQ(rec.span_count(), 1u);
}

// ---------------------------------------------------------------------------
// Chrome export
// ---------------------------------------------------------------------------

TEST(TraceExport, JsonShapeAndDeterminism) {
  TraceRecorder rec;
  {
    TraceContext ctx(rec, kTrack, 0.0, 0, 3, 1, 2);
    ctx.begin(SpanCategory::kGet, 128);
    ctx.leaf(SpanCategory::kTransferNet, 0.5, 128, TrafficClass::kInterApp, 3,
             true, TraceFlags::kLedger);
    ctx.end();
    ctx.instant(SpanCategory::kRecv, 16);
  }
  const auto spans = rec.snapshot();
  const std::string json = to_chrome_trace(spans);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"transfer_net")"), std::string::npos);
  EXPECT_NE(json.find(R"("class":"inter")"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);  // node 1 -> pid 2
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);  // core 2 -> tid 3
  // Canonical: reordering the input does not change the output.
  std::vector<TraceSpan> shuffled(spans.rbegin(), spans.rend());
  EXPECT_EQ(to_chrome_trace(shuffled), json);
  EXPECT_EQ(to_chrome_trace(rec), json);
}

TEST(TraceExport, WriteToFileRoundTrips) {
  TraceRecorder rec;
  {
    TraceContext ctx(rec, kTrack, 0.0, 0, 1, 0, 0);
    ctx.begin(SpanCategory::kTask);
    ctx.end(1.0);
  }
  const std::string path = testing::TempDir() + "cods_trace_unit.json";
  write_chrome_trace(rec, path);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), to_chrome_trace(rec));
  std::remove(path.c_str());
  EXPECT_THROW(write_chrome_trace(rec, "/nonexistent-dir/trace.json"), Error);
}

// ---------------------------------------------------------------------------
// Critical-path analyzer on a hand-built stream
// ---------------------------------------------------------------------------

TraceSpan make_span(u64 id, u64 parent, double begin, double duration,
                    SpanCategory cat, u8 flags = TraceFlags::kSequential) {
  TraceSpan s;
  s.id = id;
  s.parent = parent;
  s.begin = begin;
  s.duration = duration;
  s.cat = cat;
  s.flags = flags;
  return s;
}

TEST(CriticalPath, AttributesSelfTimesAndPicksLastEndingTask) {
  // wave [0, 10): task A [0, 4) with a 1s shm ledger leaf; task B [0, 9)
  // with a 2s lock wait and a 3s net ledger leaf. B ends last -> critical.
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 0, 0.0, 10.0, SpanCategory::kWave));
  spans.push_back(make_span(100, 1, 0.0, 4.0, SpanCategory::kTask));
  TraceSpan shm = make_span(101, 100, 0.0, 1.0, SpanCategory::kTransferShm,
                            TraceFlags::kSequential | TraceFlags::kLedger);
  shm.bytes = 1000;
  shm.cls = TrafficClass::kInterApp;
  shm.app_id = 1;
  spans.push_back(shm);
  spans.push_back(make_span(200, 1, 0.0, 9.0, SpanCategory::kTask));
  spans.push_back(make_span(201, 200, 0.0, 2.0, SpanCategory::kLockWait));
  TraceSpan net = make_span(202, 200, 2.0, 3.0, SpanCategory::kTransferNet,
                            TraceFlags::kSequential | TraceFlags::kLedger);
  net.bytes = 5000;
  net.cls = TrafficClass::kIntraApp;
  net.app_id = 2;
  spans.push_back(net);

  const TraceAnalysis analysis = analyze_trace(spans);
  ASSERT_EQ(analysis.waves.size(), 1u);
  const WaveBreakdown& wave = analysis.waves[0];
  EXPECT_EQ(wave.span_id, 1u);
  EXPECT_EQ(wave.critical_task, 200u);
  EXPECT_DOUBLE_EQ(analysis.total_time, 10.0);
  EXPECT_DOUBLE_EQ(analysis.critical_length, 9.0);
  // Serialized attribution: A self 3 + B self 4 + wave self 10-(4+9 -> 0
  // clamped? no: children of the wave sum 13 > 10, clamps to 0).
  EXPECT_DOUBLE_EQ(wave.time.shm, 1.0);
  EXPECT_DOUBLE_EQ(wave.time.net, 3.0);
  EXPECT_DOUBLE_EQ(wave.time.lock_wait, 2.0);
  EXPECT_DOUBLE_EQ(wave.time.compute, 3.0 + 4.0);
  // Critical subtree: B only (self 4 compute, 2 lock, 3 net).
  EXPECT_DOUBLE_EQ(wave.critical_time.compute, 4.0);
  EXPECT_DOUBLE_EQ(wave.critical_time.net, 3.0);
  EXPECT_DOUBLE_EQ(wave.critical_time.lock_wait, 2.0);
  EXPECT_DOUBLE_EQ(wave.critical_time.shm, 0.0);
  EXPECT_LE(wave.critical_time.total(), wave.duration + 1e-12);
  // Ledger totals and per-app byte rows.
  EXPECT_EQ(analysis.shm_bytes, 1000u);
  EXPECT_EQ(analysis.net_bytes, 5000u);
  EXPECT_EQ(analysis.ledger_spans, 2u);
  ASSERT_EQ(wave.apps.size(), 2u);
  EXPECT_EQ(wave.apps[0].app_id, 1);
  EXPECT_EQ(wave.apps[0].inter_shm, 1000u);
  EXPECT_EQ(wave.apps[1].app_id, 2);
  EXPECT_EQ(wave.apps[1].intra_net, 5000u);
  // The critical path alternates wave id, task id.
  ASSERT_EQ(analysis.critical_path.size(), 2u);
  EXPECT_EQ(analysis.critical_path[0], 1u);
  EXPECT_EQ(analysis.critical_path[1], 200u);
  const std::string report = analysis.report();
  EXPECT_NE(report.find("1 wave(s)"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
}

TEST(CriticalPath, PullSelfSplitsByOverlayByteMix) {
  // task [0, 4): pull [0, 4) whose overlay ops moved 3 net bytes for every
  // 1 shm byte -> the 4s batch interval splits 3s net / 1s shm.
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 0, 0.0, 4.0, SpanCategory::kTask));
  spans.push_back(make_span(2, 1, 0.0, 4.0, SpanCategory::kPull));
  TraceSpan shm = make_span(3, 2, 0.0, 2.0, SpanCategory::kTransferShm,
                            TraceFlags::kLedger);  // overlay: not sequential
  shm.bytes = 100;
  spans.push_back(shm);
  TraceSpan net = make_span(4, 2, 0.0, 4.0, SpanCategory::kTransferNet,
                            TraceFlags::kLedger);
  net.bytes = 300;
  spans.push_back(net);

  // No wave: attribute via a synthetic wave wrapper instead.
  spans.push_back(make_span(0x100, 0, 0.0, 4.0, SpanCategory::kWave));
  for (TraceSpan& s : spans) {
    if (s.id == 1) s.parent = 0x100;
  }
  const TraceAnalysis analysis = analyze_trace(spans);
  ASSERT_EQ(analysis.waves.size(), 1u);
  const CategorySeconds& t = analysis.waves[0].time;
  EXPECT_DOUBLE_EQ(t.net, 3.0);
  EXPECT_DOUBLE_EQ(t.shm, 1.0);
  EXPECT_DOUBLE_EQ(t.compute, 0.0);  // task fully covered by the pull
}

TEST(CriticalPath, PullWithoutBytesIsControl) {
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 0, 0.0, 2.0, SpanCategory::kWave));
  spans.push_back(make_span(2, 1, 0.0, 2.0, SpanCategory::kTask));
  spans.push_back(make_span(3, 2, 0.0, 1.5, SpanCategory::kPull));
  const TraceAnalysis analysis = analyze_trace(spans);
  ASSERT_EQ(analysis.waves.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.waves[0].time.control, 1.5);
  EXPECT_DOUBLE_EQ(analysis.waves[0].time.compute, 0.5);
}

TEST(CriticalPath, CategorySecondsAccumulate) {
  CategorySeconds a{1, 2, 3, 4, 5, 6};
  const CategorySeconds b{10, 20, 30, 40, 50, 60};
  a += b;
  EXPECT_DOUBLE_EQ(a.compute, 11);
  EXPECT_DOUBLE_EQ(a.control, 66);
  EXPECT_DOUBLE_EQ(a.total(), 11 + 22 + 33 + 44 + 55 + 66);
}

TEST(CriticalPath, ReconciliationMatchesAndDiagnoses) {
  std::vector<TraceSpan> spans;
  TraceSpan leaf = make_span(1, 0, 0.0, 0.25, SpanCategory::kTransferNet,
                             TraceFlags::kSequential | TraceFlags::kLedger);
  leaf.bytes = 4096;
  leaf.cls = TrafficClass::kInterApp;
  leaf.app_id = 3;
  spans.push_back(leaf);
  spans.push_back(make_span(2, 0, 0.0, 1.0, SpanCategory::kTask));  // ignored

  TransferRecord rec;
  rec.bytes = 4096;
  rec.via_network = true;
  rec.cls = TrafficClass::kInterApp;
  rec.app_id = 3;
  rec.model_time = 0.25;
  EXPECT_EQ(reconcile_with_transfer_log(spans, {rec}), "");

  rec.bytes = 4097;
  const std::string diag = reconcile_with_transfer_log(spans, {rec});
  EXPECT_NE(diag.find("does not reconcile"), std::string::npos);
  EXPECT_NE(diag.find("divergence"), std::string::npos);
  EXPECT_NE(reconcile_with_transfer_log(spans, {}), "");
}

TEST(CriticalPath, EmptyStreamAnalyzesToZero) {
  const TraceAnalysis analysis = analyze_trace({});
  EXPECT_EQ(analysis.waves.size(), 0u);
  EXPECT_DOUBLE_EQ(analysis.total_time, 0.0);
  EXPECT_FALSE(analysis.report().empty());
}

}  // namespace
}  // namespace cods
