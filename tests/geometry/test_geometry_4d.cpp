// Higher-dimensional property sweeps: the geometry substrate is written
// for arbitrary dimensionality up to kMaxDims; these tests pin that down
// in 4-D, where indexing mistakes that cancel out in 2-D/3-D surface.
#include <gtest/gtest.h>

#include "core/layout.hpp"
#include "geometry/halo.hpp"
#include "geometry/redistribution.hpp"

namespace cods {
namespace {

TEST(Geometry4D, DecompositionCoversDomain) {
  for (Dist dist : {Dist::kBlocked, Dist::kCyclic, Dist::kBlockCyclic}) {
    Decomposition dec({6, 4, 4, 6}, {2, 2, 1, 3}, dist, 2);
    std::vector<Box> all;
    for (i32 rank = 0; rank < dec.ntasks(); ++rank) {
      auto boxes = dec.owned_boxes(rank);
      all.insert(all.end(), boxes.begin(), boxes.end());
    }
    EXPECT_TRUE(exactly_covers(dec.domain_box(), all)) << to_string(dist);
  }
}

TEST(Geometry4D, RedistributionConserves) {
  Decomposition src({6, 4, 4, 6}, {3, 2, 2, 1}, Dist::kBlocked);
  Decomposition dst({6, 4, 4, 6}, {2, 1, 2, 2}, Dist::kCyclic);
  EXPECT_EQ(total_cells(redistribution_volumes(src, dst)),
            src.domain_cells());
}

TEST(Geometry4D, RankGridRoundTrip) {
  Decomposition dec({8, 8, 8, 8}, {2, 3, 2, 2}, Dist::kBlocked);
  EXPECT_EQ(dec.ntasks(), 24);
  for (i32 rank = 0; rank < dec.ntasks(); ++rank) {
    EXPECT_EQ(dec.grid_to_rank(dec.rank_to_grid(rank)), rank);
  }
}

TEST(Geometry4D, HaloHasUpToEightNeighbours) {
  Decomposition dec({8, 8, 8, 8}, {2, 2, 2, 2}, Dist::kBlocked);
  const auto volumes = halo_volumes(dec, 1);
  std::map<i32, int> degree;
  for (const auto& t : volumes) ++degree[t.src_rank];
  for (const auto& [rank, d] : degree) {
    EXPECT_EQ(d, 4);  // corner task of a 2^4 grid: one neighbour per dim
  }
  // Face volume: 1 layer x 4^3 cross-section.
  EXPECT_EQ(volumes.front().cells, 64u);
}

TEST(Geometry4D, LayoutRoundTrip) {
  const Box box{{0, 0, 0, 0}, {3, 2, 4, 3}};
  const Box region{{1, 1, 1, 1}, {2, 2, 3, 2}};
  std::vector<std::byte> src(box_bytes(box, 8));
  std::vector<std::byte> dst(box_bytes(box, 8), std::byte{0});
  fill_pattern(src, box, 8, 21);
  copy_box_region(src, box, dst, box, region, 8);
  std::vector<std::byte> probe(box_bytes(region, 8));
  copy_box_region(dst, box, probe, region, region, 8);
  EXPECT_EQ(verify_pattern(probe, region, 8, 21), 0u);
}

TEST(Geometry4D, CellOffsetLastDimContiguous) {
  const Box box{{0, 0, 0, 0}, {2, 2, 2, 9}};
  EXPECT_EQ(cell_offset(box, Point{0, 0, 0, 5}) -
                cell_offset(box, Point{0, 0, 0, 4}),
            1u);
  EXPECT_EQ(cell_offset(box, Point{0, 0, 1, 0}) -
                cell_offset(box, Point{0, 0, 0, 0}),
            10u);
}

TEST(Geometry4D, OverlapBoxesDisjointAndConserving) {
  Decomposition src({6, 6, 4, 4}, {2, 2, 2, 1}, Dist::kBlockCyclic, 2);
  Decomposition dst({6, 6, 4, 4}, {1, 2, 2, 2}, Dist::kBlocked);
  for (const auto& t : redistribution_volumes(src, dst)) {
    const auto boxes = overlap_boxes(src, t.src_rank, dst, t.dst_rank);
    u64 cells = 0;
    for (size_t i = 0; i < boxes.size(); ++i) {
      cells += boxes[i].volume();
      for (size_t j = i + 1; j < boxes.size(); ++j) {
        EXPECT_FALSE(boxes[i].intersects(boxes[j]));
      }
    }
    EXPECT_EQ(cells, t.cells);
  }
}

TEST(Geometry4D, FifthDimensionRejected) {
  EXPECT_THROW(Decomposition({2, 2, 2, 2, 2}, {1, 1, 1, 1, 1},
                             Dist::kBlocked),
               Error);
  EXPECT_THROW((Point{1, 2, 3, 4, 5}), Error);
}

}  // namespace
}  // namespace cods
