// Deterministic pseudo-random generation (SplitMix64 seeding + xoshiro256**)
// so every experiment, test and benchmark is bit-reproducible across runs.
#pragma once

#include <array>

#include "common/types.hpp"

namespace cods {

/// SplitMix64: used to expand a single seed into generator state.
inline u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5eed5eedULL) {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound) {
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~bound + 1) % bound;
    for (;;) {
      const u64 r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace cods
