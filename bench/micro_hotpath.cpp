// Hot-path microbenchmarks (docs/PERF.md): sharded vs single-mutex
// metrics recording under concurrent ranks, interned vs string counter
// ids, the client DHT lookup cache on repeated retrievals, and
// small-transfer batching in HybridDART's pull path.
//
//   build/bench/micro_hotpath --benchmark_counters_tabular=true
//
// The "Legacy" baselines reproduce the pre-sharding registry (one global
// mutex in front of plain maps) so the speedup is measured against the
// design this PR replaced, not against a strawman.
#include <benchmark/benchmark.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/cods.hpp"

namespace {

using namespace cods;

// --------------------------------------------------------------------------
// Metrics recording throughput: all threads hammer one registry.
// --------------------------------------------------------------------------

/// The previous Metrics design: every mutation takes one global mutex.
class LegacyMetrics {
 public:
  void record(i32 app_id, TrafficClass cls, u64 bytes, bool via_network) {
    std::scoped_lock lock(mutex_);
    ByteCounters& c = counters_[{app_id, cls}];
    if (via_network) {
      c.net_bytes += bytes;
    } else {
      c.shm_bytes += bytes;
    }
    ++c.transfers;
  }
  void add_count(i32 app_id, const std::string& name, u64 n = 1) {
    std::scoped_lock lock(mutex_);
    event_counts_[{app_id, name}] += n;
  }

 private:
  std::mutex mutex_;
  std::map<std::pair<i32, TrafficClass>, ByteCounters> counters_;
  std::map<std::pair<i32, std::string>, u64> event_counts_;
};

LegacyMetrics g_legacy;
Metrics g_sharded;

void BM_LegacyMetricsRecord(benchmark::State& state) {
  const i32 app = state.thread_index() % 4;
  for (auto _ : state) {
    g_legacy.record(app, TrafficClass::kInterApp, 4096, true);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyMetricsRecord)->Threads(1)->Threads(8)->UseRealTime();

void BM_ShardedMetricsRecord(benchmark::State& state) {
  const i32 app = state.thread_index() % 4;
  for (auto _ : state) {
    g_sharded.record(app, TrafficClass::kInterApp, 4096, true);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedMetricsRecord)->Threads(1)->Threads(8)->UseRealTime();

void BM_LegacyMetricsNamedCount(benchmark::State& state) {
  const i32 app = state.thread_index() % 4;
  for (auto _ : state) {
    g_legacy.add_count(app, "fault.retries");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyMetricsNamedCount)->Threads(1)->Threads(8)->UseRealTime();

void BM_ShardedMetricsInternedCount(benchmark::State& state) {
  const i32 app = state.thread_index() % 4;
  static const Metrics::CounterId id = g_sharded.intern("fault.retries");
  for (auto _ : state) {
    g_sharded.add_count(app, id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedMetricsInternedCount)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

// --------------------------------------------------------------------------
// Repeated retrieval latency: the DHT lookup cache vs a query per get.
// Schedule cache disabled so every get reaches the lookup path; the
// schedule-cache row shows the (cheaper still) fully cached fast path.
// --------------------------------------------------------------------------

struct GetBenchState {
  Cluster cluster{ClusterSpec{.num_nodes = 4, .cores_per_node = 4}};
  Metrics metrics;
  CodsSpace space{cluster, metrics, Box{{0, 0}, {255, 255}}};
  std::vector<std::byte> out;

  GetBenchState() {
    // Four producers each store one quadrant so a full-domain get has a
    // multi-source schedule and a multi-node DHT query.
    const std::vector<Box> quads = {
        Box{{0, 0}, {127, 127}}, Box{{0, 128}, {127, 255}},
        Box{{128, 0}, {255, 127}}, Box{{128, 128}, {255, 255}}};
    for (int p = 0; p < 4; ++p) {
      const CoreLoc loc{p, 0};
      CodsClient producer(space, Endpoint{cluster.global_core(loc), loc}, 1);
      std::vector<std::byte> data(box_bytes(quads[static_cast<size_t>(p)], 8));
      fill_pattern(data, quads[static_cast<size_t>(p)], 8, 1);
      producer.put_seq("field", 0, quads[static_cast<size_t>(p)], data, 8);
    }
    out.resize(box_bytes(Box{{0, 0}, {255, 255}}, 8));
  }
};

void BM_RepeatedGetSeq(benchmark::State& state) {
  static GetBenchState s;
  const CoreLoc loc{1, 1};
  CodsClient consumer(s.space, Endpoint{s.cluster.global_core(loc), loc}, 2);
  const bool schedule_cache = state.range(0) == 2;
  consumer.set_schedule_cache_enabled(schedule_cache);
  consumer.set_lookup_cache_enabled(state.range(0) >= 1);
  const Box whole{{0, 0}, {255, 255}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        consumer.get_seq("field", 0, whole, s.out, 8));
  }
  state.SetLabel(state.range(0) == 0   ? "uncached"
                 : state.range(0) == 1 ? "lookup-cache"
                                       : "schedule-cache");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RepeatedGetSeq)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------------------
// Small-transfer batching: 512 sub-threshold pulls over 16 routes.
// Modelled times are identical (cost model sums bytes per route); the
// benchmark shows the host-side cost of walking 512 vs 16 flows.
// --------------------------------------------------------------------------

struct PullBenchState {
  Cluster cluster{ClusterSpec{.num_nodes = 4, .cores_per_node = 4}};
  Metrics metrics;
  HybridDart dart{cluster, metrics};
  std::vector<std::byte> window;
  std::vector<PullOp> ops;

  PullBenchState() {
    window.resize(512 * 1024);
    // 16 producer cores (4 per node), each exposing one window that 512
    // small ops pull slices of — 32 ops per (producer, consumer) route.
    for (i32 p = 0; p < 16; ++p) {
      dart.expose(p, /*key=*/1, window);
    }
    const CoreLoc consumer_loc{3, 3};
    const i32 consumer_id = cluster.global_core(consumer_loc);
    for (int i = 0; i < 512; ++i) {
      const i32 p = static_cast<i32>(i % 16);
      PullOp op;
      op.local = Endpoint{consumer_id, consumer_loc};
      op.remote = Endpoint{p, CoreLoc{p / 4, p % 4}};
      op.key = 1;
      op.bytes = 1024;  // well below the 64 KiB threshold
      op.app_id = 2;
      ops.push_back(op);
    }
  }
};

void BM_PullSmallWindows(benchmark::State& state) {
  static PullBenchState s;
  s.dart.set_batch_threshold(static_cast<u64>(state.range(0)));
  double modelled = 0.0;
  for (auto _ : state) {
    modelled = s.dart.pull(s.ops);
    benchmark::DoNotOptimize(modelled);
  }
  s.dart.set_batch_threshold(0);
  state.SetLabel(state.range(0) == 0 ? "unbatched" : "batched-64KiB");
  state.counters["modelled_s"] = modelled;
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PullSmallWindows)->Arg(0)->Arg(64 * 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
