"""The code model codslint's checks run against.

One `CodeIndex` covers the whole analysis scope (every TU in the compilation
database plus the project headers they include). Per file it builds a scope
tree (namespaces, classes, functions, blocks) from the token stream; across
files it indexes classes (fields with canonical types and initializers,
methods with return types, bases), free/member function definitions (with
their call sites, local declarations, scoped-guard extents and range-for
loops) and type aliases. On top of that it resolves:

  * canonical types through `using X = Y` / `typedef` chains,
  * receiver types of member calls (`space_->dart().record(...)` resolves
    through field types and method return types to `cods::HybridDart`),
  * mutex *names* ("cods.cont") from guard expressions via field
    initializers (`Mutex cont_mutex_{"cods.cont"}`).

This is deliberately not a full C++ frontend: templates are not
instantiated and overload resolution is name-based. Each check documents
the approximations it tolerates; anything unresolvable degrades to "no
finding" plus (with --verbose) a note, never to a crash.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Optional

from . import lexer

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "continue",
    "decltype", "default", "delete", "do", "double", "else", "enum",
    "explicit", "extern", "false", "final", "float", "for", "friend", "goto",
    "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "override", "private", "protected", "public",
    "register", "requires", "return", "short", "signed", "sizeof", "static",
    "struct", "switch", "template", "this", "throw", "true", "try", "typedef",
    "typeid", "typename", "union", "unsigned", "using", "virtual", "void",
    "volatile", "while",
}

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}

# Scoped-guard types of the sync layer (bare names; the canonicalizer strips
# the cods:: qualification). std guards are banned by check_sync, but the
# extractor still understands them so bait files exercise the same path.
GUARD_TYPES = {
    "MutexLock": "exclusive",
    "WriterLock": "exclusive",
    "ReaderLock": "shared",
    "std::lock_guard": "exclusive",
    "std::scoped_lock": "exclusive",
    "std::unique_lock": "exclusive",
    "std::shared_lock": "shared",
}

MUTEX_TYPES = {"Mutex", "SharedMutex", "std::mutex", "std::shared_mutex"}


@dataclasses.dataclass
class CallSite:
    name: str                     # bare callee name
    qual: str                     # written qualification ("std::this_thread")
    recv: list[lexer.Token]       # receiver expression tokens ([] = none)
    tok: int                      # index of the callee-name token
    line: int
    file: str
    arg_range: tuple[int, int]    # token span of the ( ... ) argument list


@dataclasses.dataclass
class GuardScope:
    guard_type: str               # MutexLock / ReaderLock / ...
    mutex_expr: list[lexer.Token]
    lock_name: Optional[str]      # resolved registry name, e.g. "cods.cont"
    decl_tok: int
    end_tok: int                  # index of the closing } of the guard's block
    line: int
    file: str


@dataclasses.dataclass
class RangeFor:
    seq: list[lexer.Token]        # the sequence expression tokens
    line: int
    file: str
    body_range: tuple[int, int]


@dataclasses.dataclass
class LocalDecl:
    name: str
    type_text: str                # canonical-ish declared type
    tok: int
    line: int


@dataclasses.dataclass
class FunctionDef:
    qualname: str                 # namespaces::Class::name
    name: str
    cls: Optional[str]            # defining class qualname (None = free)
    file: str
    line: int
    body_range: tuple[int, int]
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    guards: list[GuardScope] = dataclasses.field(default_factory=list)
    range_fors: list[RangeFor] = dataclasses.field(default_factory=list)
    decls: list[LocalDecl] = dataclasses.field(default_factory=list)
    ctor_decls: list[tuple[str, int, int]] = dataclasses.field(
        default_factory=list)  # (class type, tok, line): implicit ctor calls

    def decl_type(self, name: str, before_tok: int) -> Optional[str]:
        best = None
        for d in self.decls:
            if d.name == name and d.tok <= before_tok:
                best = d.type_text
        return best

    def guards_at(self, tok: int) -> list[GuardScope]:
        return [g for g in self.guards if g.decl_tok < tok <= g.end_tok]


@dataclasses.dataclass
class Field:
    name: str
    type_text: str
    init_string: Optional[str]    # first string literal of the initializer
    line: int


@dataclasses.dataclass
class Method:
    name: str
    ret_type: str
    line: int


@dataclasses.dataclass
class ClassInfo:
    qualname: str
    name: str
    file: str
    line: int
    bases: list[str] = dataclasses.field(default_factory=list)
    fields: dict[str, Field] = dataclasses.field(default_factory=dict)
    methods: dict[str, Method] = dataclasses.field(default_factory=dict)


class CodeIndex:
    def __init__(self) -> None:
        self.files: dict[str, lexer.LexedFile] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[str]] = {}
        self.functions: dict[str, list[FunctionDef]] = {}   # by qualname
        self.functions_by_name: dict[str, list[FunctionDef]] = {}
        self.aliases: dict[str, str] = {}
        self.notes: list[str] = []

    # -- construction ------------------------------------------------------

    def add_file(self, path: pathlib.Path, text: Optional[str] = None) -> None:
        key = str(path)
        if key in self.files:
            return
        lf = lexer.lex(key, text)
        self.files[key] = lf
        _Parser(self, lf).parse()

    def finish(self) -> None:
        """Resolve what needs the whole index: guard lock names."""
        for defs in self.functions.values():
            for fn in defs:
                for g in fn.guards:
                    if g.lock_name is None:
                        g.lock_name = self.resolve_lock_name(
                            g.mutex_expr, fn, g.decl_tok)

    # -- lookups -----------------------------------------------------------

    def find_class(self, name: str,
                   context: Optional[str] = None) -> Optional[ClassInfo]:
        name = self.canon_type_name(name)
        bare = name.split("<")[0].rsplit("::", 1)[-1]
        candidates = self.classes_by_name.get(bare, [])
        if not candidates:
            return None
        if context:
            # Prefer a class whose qualname shares the context's namespace.
            ns = context.rsplit("::", 1)[0] if "::" in context else ""
            for q in candidates:
                if q.rsplit("::", 1)[0] == ns:
                    return self.classes[q]
        for q in candidates:
            if q == name or q.endswith("::" + name):
                return self.classes[q]
        return self.classes[candidates[0]]

    def class_field(self, cls: Optional[ClassInfo],
                    name: str) -> Optional[Field]:
        seen = set()
        while cls is not None and cls.qualname not in seen:
            seen.add(cls.qualname)
            if name in cls.fields:
                return cls.fields[name]
            cls = self.find_class(cls.bases[0]) if cls.bases else None
        return None

    def class_method(self, cls: Optional[ClassInfo],
                     name: str) -> Optional[Method]:
        seen = set()
        while cls is not None and cls.qualname not in seen:
            seen.add(cls.qualname)
            if name in cls.methods:
                return cls.methods[name]
            cls = self.find_class(cls.bases[0]) if cls.bases else None
        return None

    def derived_classes(self, base_qual: str) -> list[ClassInfo]:
        base_bare = base_qual.rsplit("::", 1)[-1]
        out = []
        for info in self.classes.values():
            for b in info.bases:
                if b.split("<")[0].rsplit("::", 1)[-1] == base_bare:
                    out.append(info)
        return out

    # -- type machinery ----------------------------------------------------

    def canon_type_name(self, text: str) -> str:
        for _ in range(8):
            replaced = self.aliases.get(text)
            if replaced is None:
                replaced = self.aliases.get(text.rsplit("::", 1)[-1])
            if replaced is None or replaced == text:
                break
            text = replaced
        return text

    def type_head(self, text: str) -> str:
        """Canonical outer type: alias-resolved, template args stripped."""
        return self.canon_type_name(text).split("<")[0]

    def resolve_expr_type(self, toks: list[lexer.Token], fn: FunctionDef,
                          at_tok: int) -> Optional[str]:
        """Canonical type of a member-access chain like `space_->dart()` or
        `shard.mutex` or `this`. Returns the canonical type text or None."""
        i = 0
        n = len(toks)
        # Strip leading dereference / address-of.
        while i < n and toks[i].kind == "punct" and toks[i].text in "*&(":
            i += 1
        if i >= n:
            return None
        cur_type: Optional[str] = None
        cls = self.find_class(fn.cls) if fn.cls else None
        head = toks[i]
        if head.text == "this":
            cur_type = fn.cls
            i += 1
        elif head.kind == "ident":
            name = head.text
            i += 1
            # qualified name? consume A::B chains as a type/namespace ref.
            while i + 1 < n and toks[i].text == "::" and \
                    toks[i + 1].kind == "ident":
                name += "::" + toks[i + 1].text
                i += 2
            local = fn.decl_type(name, at_tok)
            if local is not None:
                cur_type = local
            else:
                field = self.class_field(cls, name)
                if field is not None:
                    cur_type = field.type_text
                else:
                    method = self.class_method(cls, name) \
                        if i < n and toks[i].text == "(" else None
                    if method is not None:
                        cur_type = method.ret_type
                    else:
                        cur_type = name  # maybe a type/namespace (static call)
        else:
            return None
        # Walk the remaining chain.
        while i < n and cur_type is not None:
            t = toks[i]
            if t.text == "(" or t.text == "[":
                depth = 0
                while i < n:
                    if toks[i].text in "([":
                        depth += 1
                    elif toks[i].text in ")]":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
                continue
            if t.text in (".", "->") and i + 1 < n:
                member = toks[i + 1].text
                owner = self.find_class(cur_type)
                field = self.class_field(owner, member)
                if field is not None:
                    cur_type = field.type_text
                else:
                    method = self.class_method(owner, member)
                    cur_type = method.ret_type if method else None
                i += 2
                continue
            i += 1
        if cur_type is None:
            return None
        return self.canon_type_name(_strip_type(cur_type))

    def resolve_receiver_class(self, call: CallSite,
                               fn: FunctionDef) -> Optional[str]:
        """Canonical class qualname of a member call's receiver, or the
        enclosing class for unqualified calls that match a member."""
        if call.recv:
            t = self.resolve_expr_type(call.recv, fn, call.tok)
            if t is None:
                return None
            info = self.find_class(t, fn.qualname)
            return info.qualname if info else self.type_head(t)
        if call.qual:
            # Static/qualified call: Class::method.
            info = self.find_class(call.qual, fn.qualname)
            if info and call.name in info.methods:
                return info.qualname
            return None
        if fn.cls:
            info = self.find_class(fn.cls)
            if self.class_method(info, call.name) is not None:
                return info.qualname if info else fn.cls
        return None

    def resolve_lock_name(self, expr: list[lexer.Token], fn: FunctionDef,
                          at_tok: Optional[int] = None) -> Optional[str]:
        """Registry name of the mutex a guard expression denotes, from the
        declaration initializer: Mutex cont_mutex_{"cods.cont"}.
        `at_tok` is the guard's declaration token index (scopes local-decl
        lookup); defaults to end-of-file."""
        toks = [t for t in expr if t.text not in ("(", ")", "*", "&")]
        if not toks:
            return None
        if at_tok is None:
            at_tok = len(self.files[fn.file].tokens) if fn.file in \
                self.files else 1 << 30
        cls = self.find_class(fn.cls) if fn.cls else None
        # Single identifier: member field (incl. through bases).
        if len(toks) == 1 and toks[0].kind == "ident":
            field = self.class_field(cls, toks[0].text)
            if field is not None:
                return field.init_string
            return None
        # a.b / a->b chains: resolve owner type, then the final field.
        if len(toks) >= 3 and toks[-2].text in (".", "->"):
            owner_t = self.resolve_expr_type(expr[:-2], fn, at_tok)
            owner = self.find_class(owner_t) if owner_t else None
            field = self.class_field(owner, toks[-1].text)
            if field is not None:
                return field.init_string
        return None


def _strip_type(text: str) -> str:
    for kw in ("const ", "mutable ", "static ", "volatile "):
        text = text.replace(kw, "")
    return text.replace("&", "").replace("*", "").strip()


# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Scope:
    kind: str          # 'ns' | 'class' | 'fn' | 'block' | 'opaque'
    name: str = ""
    open_tok: int = -1
    close_tok: int = -1
    fn: Optional[FunctionDef] = None


class _Parser:
    """Single-file pass: scope tree + declarations + calls into the index."""

    def __init__(self, index: CodeIndex, lf: lexer.LexedFile):
        self.index = index
        self.lf = lf
        self.toks = lf.tokens
        self.match = self._match_brackets()

    def _match_brackets(self) -> dict[int, int]:
        match: dict[int, int] = {}
        stack: list[tuple[str, int]] = []
        closers = {")": "(", "}": "{", "]": "["}
        for i, t in enumerate(self.toks):
            if t.kind != "punct":
                continue
            if t.text in "({[":
                stack.append((t.text, i))
            elif t.text in ")}]":
                want = closers[t.text]
                while stack and stack[-1][0] != want:
                    stack.pop()  # unbalanced — drop strays, keep going
                if stack:
                    _, j = stack.pop()
                    match[j] = i
                    match[i] = j
        return match

    # -- template-argument matcher (heuristic, on demand) -------------------

    def skip_template_args(self, i: int) -> int:
        """`i` points at '<'. Returns index after the matching '>' or `i`
        when this is not a template argument list."""
        depth = 0
        j = i
        limit = min(len(self.toks), i + 400)
        while j < limit:
            text = self.toks[j].text
            if text == "<":
                depth += 1
            elif text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif text == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif text in (";", "{", "}") or (
                    text in ("&&", "||") and depth > 0):
                return i
            j += 1
        return i

    # -- type / name helpers -------------------------------------------------

    def type_text(self, start: int, end: int) -> str:
        """Render tokens [start, end) as a type string."""
        out: list[str] = []
        i = start
        while i < end:
            t = self.toks[i]
            if t.kind == "ident" and t.text in (
                    "const", "mutable", "static", "volatile", "typename",
                    "constexpr", "inline", "extern", "friend", "explicit",
                    "virtual"):
                i += 1
                continue
            if t.text in ("&", "*", "&&"):
                i += 1
                continue
            if t.kind == "str":
                out.append(f'"{t.text}"')
            else:
                out.append(t.text)
            i += 1
        text = ""
        for piece in out:
            if text and piece[0].isalnum() and text[-1].isalnum():
                text += " "
            text += piece
        return text

    # -- main walk -----------------------------------------------------------

    def parse(self) -> None:
        toks = self.toks
        scopes: list[_Scope] = [_Scope("ns", "")]
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text == "using" and t.kind == "ident":
                i = self.parse_using(i)
                continue
            if t.text == "typedef" and t.kind == "ident":
                i = self.parse_typedef(i)
                continue
            if t.text == "{" and t.kind == "punct":
                scope = self.classify_brace(i, scopes)
                scope.open_tok = i
                scope.close_tok = self.match.get(i, n - 1)
                scopes.append(scope)
                if scope.kind == "class":
                    self.parse_class_body(scope)
                    i = scope.close_tok + 1
                    scopes.pop()
                    continue
                if scope.kind == "fn" and scope.fn is not None:
                    self.parse_function_body(scope.fn, i,
                                             scope.close_tok)
                    i = scope.close_tok + 1
                    scopes.pop()
                    continue
                if scope.kind == "opaque":
                    i = scope.close_tok + 1
                    scopes.pop()
                    continue
                i += 1
                continue
            if t.text == "}" and t.kind == "punct":
                if len(scopes) > 1:
                    scopes.pop()
                i += 1
                continue
            i += 1

    def enclosing_name(self, scopes: list[_Scope]) -> str:
        parts = [s.name for s in scopes if s.kind in ("ns", "class") and s.name]
        return "::".join(parts)

    def classify_brace(self, i: int, scopes: list[_Scope]) -> _Scope:
        """Decide what the '{' at token i opens."""
        toks = self.toks
        prev = toks[i - 1] if i > 0 else None
        # namespace NAME {  /  namespace A::B {  /  namespace {
        j = i - 1
        while j >= 0 and (toks[j].kind == "ident" or toks[j].text == "::"):
            if toks[j].kind == "ident" and toks[j].text == "namespace":
                name = "".join(t.text for t in toks[j + 1:i])
                return _Scope("ns", name)
            j -= 1
        # class/struct/union/enum headers: scan back to the keyword, stopping
        # at statement boundaries.
        j = i - 1
        while j >= 0 and toks[j].text not in (";", "{", "}", ")"):
            if toks[j].kind == "ident" and toks[j].text in ("class", "struct",
                                                            "union", "enum"):
                if toks[j].text == "enum":
                    return _Scope("opaque")
                name = self.class_header_name(j, i)
                if name is None:
                    return _Scope("opaque")
                qual = self.enclosing_name(scopes)
                info = ClassInfo(qual + "::" + name if qual else name, name,
                                 self.lf.path, toks[j].line,
                                 bases=self.class_bases(j, i))
                self.index.classes.setdefault(info.qualname, info)
                self.index.classes_by_name.setdefault(info.name, [])
                if info.qualname not in self.index.classes_by_name[info.name]:
                    self.index.classes_by_name[info.name].append(info.qualname)
                return _Scope("class", name)
            j -= 1
        # `) {`, possibly with trailing specifiers: `) const noexcept {`.
        k = i - 1
        while k > 0 and toks[k].kind == "ident" and toks[k].text in (
                "const", "noexcept", "override", "final", "volatile",
                "mutable"):
            k -= 1
        if k > 0 and toks[k].text == ")":
            open_paren = self.match.get(k)
            if open_paren is None:
                return _Scope("opaque")
            header = self.control_or_function(open_paren, i, scopes)
            if header is not None:
                return header
            return _Scope("block")
        if prev is not None and prev.kind == "ident" and prev.text in (
                "else", "do", "try"):
            return _Scope("block")
        if prev is not None and prev.text == "]":
            return _Scope("block")  # lambda without parameter list
        # expression braces (= {...}, {"name"}, arg lists): transparent.
        return _Scope("opaque")

    def class_header_name(self, kw: int, brace: int) -> Optional[str]:
        """Name of `class ... NAME [final] [: bases] {`, skipping attribute
        macro calls like CODS_CAPABILITY("mutex")."""
        toks = self.toks
        j = kw + 1
        name = None
        while j < brace:
            t = toks[j]
            if t.text == ":":
                break
            if t.kind == "ident" and t.text not in ("final", "alignas"):
                if j + 1 < brace and toks[j + 1].text == "(":
                    j = self.match.get(j + 1, j + 1) + 1  # macro/attr call
                    continue
                name = t.text
            j += 1
        return name

    def class_bases(self, kw: int, brace: int) -> list[str]:
        toks = self.toks
        j = kw + 1
        while j < brace and toks[j].text != ":":
            if toks[j].text == "(":
                j = self.match.get(j, j) + 1
                continue
            j += 1
        if j >= brace:
            return []
        bases = []
        k = j + 1
        seg_start = k
        depth = 0
        while k <= brace:
            text = toks[k].text if k < brace else ","
            if text == "<":
                nk = self.skip_template_args(k)
                if nk > k:
                    k = nk
                    continue
            if text in ("(",):
                depth += 1
            elif text in (")",):
                depth -= 1
            if text == "," and depth == 0 or k == brace:
                seg = [t for t in toks[seg_start:k]
                       if t.text not in ("public", "private", "protected",
                                         "virtual")]
                if seg:
                    bases.append("".join(t.text for t in seg))
                seg_start = k + 1
            k += 1
        return bases

    def control_or_function(self, open_paren: int, brace: int,
                            scopes: list[_Scope]) -> Optional[_Scope]:
        """`( ... ) {` — a control statement, a lambda, a function def, or
        (when classification fails inside a function) a plain block."""
        toks = self.toks
        before = open_paren - 1
        # `for/if/while/switch/catch (...) {`
        if before >= 0 and toks[before].kind == "ident" and \
                toks[before].text in CONTROL_KEYWORDS:
            return _Scope("block")
        # lambda `[...] (...) ... {`
        if before >= 0 and toks[before].text == "]":
            return _Scope("block")
        # Constructor member-init lists / trailing specifiers: walk back from
        # the brace over `: a_(x), b_{y}` and `const noexcept override -> T`.
        paren = self.rewind_to_param_list(open_paren, brace)
        if paren is None:
            return None
        before = paren - 1
        if before < 0 or toks[before].kind != "ident" or \
                toks[before].text in KEYWORDS and \
                toks[before].text != "operator":
            # operator() / operator== definitions: name is 'operator' + punct
            if before >= 1 and toks[before - 1].text == "operator":
                before -= 1
            elif before >= 0 and toks[before].text == "operator":
                pass
            else:
                return None
        in_fn = any(s.kind == "fn" for s in scopes)
        if in_fn:
            return _Scope("block")
        name_tok = toks[before]
        name = name_tok.text
        # Qualified definition `Ret Class::name(...)`.
        cls_quals: list[str] = []
        k = before - 1
        while k - 1 >= 0 and toks[k].text == "::" and \
                toks[k - 1].kind == "ident":
            cls_quals.insert(0, toks[k - 1].text)
            k -= 2
        prefix = self.enclosing_name(scopes)
        owner: Optional[str] = None
        if cls_quals:
            owner = "::".join(cls_quals)
            info = self.index.find_class(owner, prefix or None)
            if info is not None:
                owner = info.qualname
            elif prefix:
                owner = prefix + "::" + owner
        else:
            encl = [s for s in scopes if s.kind == "class"]
            if encl:
                owner = prefix  # prefix already ends with the class name
        qual = (owner + "::" + name) if owner else (
            (prefix + "::" + name) if prefix else name)
        fn = FunctionDef(qual, name, owner, self.lf.path, name_tok.line,
                         (brace, self.match.get(brace, brace)))
        self.index.functions.setdefault(qual, []).append(fn)
        self.index.functions_by_name.setdefault(name, []).append(fn)
        self.parse_params(fn, paren, self.match.get(paren, paren))
        return _Scope("fn", name, fn=fn)

    def parse_params(self, fn: FunctionDef, open_paren: int,
                     close_paren: int) -> None:
        """Parameter declarations: `TYPE name [= default]` per comma
        segment, recorded like locals so receiver/guard expressions that
        start at a parameter resolve."""
        toks = self.toks
        for arg in self.split_args(open_paren + 1, close_paren):
            # Truncate at a default argument.
            for k, t in enumerate(arg):
                if t.text == "=":
                    arg = arg[:k]
                    break
            if len(arg) < 2:
                continue
            name_tok = arg[-1]
            if name_tok.kind != "ident" or name_tok.text in KEYWORDS:
                continue
            # Absolute index of the name token.
            idx = None
            for j in range(open_paren, close_paren):
                if toks[j] is name_tok:
                    idx = j
                    break
            if idx is None:
                continue
            type_text = self.type_text_of(arg[:-1])
            if not type_text or type_text == "auto":
                continue
            fn.decls.append(LocalDecl(
                name_tok.text, self.index.canon_type_name(type_text),
                idx, name_tok.line))

    def type_text_of(self, toks_list: list[lexer.Token]) -> str:
        out = ""
        for t in toks_list:
            if t.kind == "ident" and t.text in (
                    "const", "mutable", "volatile", "typename"):
                continue
            if t.text in ("&", "*", "&&"):
                continue
            piece = t.text
            if out and piece[0].isalnum() and out[-1].isalnum():
                out += " "
            out += piece
        return out

    def rewind_to_param_list(self, open_paren: int,
                             brace: int) -> Optional[int]:
        """From the `(` directly before the brace (after specifier
        stripping), walk back across a constructor init list to the real
        parameter list opener. Returns the index of that `(`."""
        toks = self.toks
        # Trailing specifiers between ) and { were already skipped by the
        # caller passing the right open_paren only in the simple case; here
        # handle `) : a_(x), b_(y) {` — the paren before the brace belongs
        # to the last initializer.
        paren = open_paren
        while True:
            before = paren - 1
            if before < 0:
                return paren
            t = toks[before]
            if t.kind == "ident" and t.text not in KEYWORDS:
                # `ident ( ` — init-list entry or the function name; decide
                # by what precedes the chain.
                k = before - 1
                while k - 1 >= 0 and toks[k].text == "::" and \
                        toks[k - 1].kind == "ident":
                    k -= 2
                if k >= 0 and toks[k].text in (":", ","):
                    # member-initializer — continue past it.
                    prev_close = self.prev_significant(k)
                    if prev_close is None:
                        return None
                    if toks[k].text == ":" :
                        if toks[prev_close].text == ")":
                            paren = self.match.get(prev_close)
                            if paren is None:
                                return None
                            continue
                        return None
                    # `,` — previous initializer ends with ) or }.
                    if toks[prev_close].text in (")", "}"):
                        opener = self.match.get(prev_close)
                        if opener is None:
                            return None
                        paren = opener
                        continue
                    return None
                return paren
            return paren

    def prev_significant(self, i: int) -> Optional[int]:
        return i - 1 if i - 1 >= 0 else None

    # -- using / typedef -----------------------------------------------------

    def parse_using(self, i: int) -> int:
        toks = self.toks
        n = len(toks)
        j = i + 1
        if j < n and toks[j].text == "namespace":
            while j < n and toks[j].text != ";":
                j += 1
            return j + 1
        # using NAME = TYPE ;
        if j + 1 < n and toks[j].kind == "ident" and toks[j + 1].text == "=":
            name = toks[j].text
            k = j + 2
            start = k
            while k < n and toks[k].text != ";":
                k += 1
            target = self.type_text(start, k)
            if target:
                self.index.aliases[name] = target
            return k + 1
        # using ns::name ;  — import: bare name now means the qualified one.
        start = j
        while j < n and toks[j].text != ";":
            j += 1
        segs = [t.text for t in toks[start:j]]
        if segs and segs[-1] not in ("::",):
            full = "".join(segs)
            self.index.aliases.setdefault(segs[-1], full)
        return j + 1

    def parse_typedef(self, i: int) -> int:
        toks = self.toks
        n = len(toks)
        j = i + 1
        start = j
        while j < n and toks[j].text != ";":
            j += 1
        if j - 1 > start and toks[j - 1].kind == "ident":
            name = toks[j - 1].text
            target = self.type_text(start, j - 1)
            if target:
                self.index.aliases[name] = target
        return j + 1

    # -- class bodies --------------------------------------------------------

    def parse_class_body(self, scope: _Scope) -> None:
        """Fields and method signatures at class depth; nested functions
        (inline method bodies) are parsed as function defs."""
        toks = self.toks
        info = None
        # find ClassInfo again by scope name (last registered wins is fine).
        quals = self.index.classes_by_name.get(scope.name, [])
        for q in quals:
            if self.index.classes[q].file == self.lf.path:
                info = self.index.classes[q]
        if info is None and quals:
            info = self.index.classes[quals[0]]
        if info is None:
            return
        i = scope.open_tok + 1
        end = scope.close_tok
        stmt_start = i
        while i < end:
            t = toks[i]
            if t.text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].text == ":":
                i += 2
                stmt_start = i
                continue
            if t.text == "<":
                nk = self.skip_template_args(i)
                if nk > i:
                    i = nk
                    continue
            if t.text == "(":
                close = self.match.get(i, i)
                # method?  ident ( ... ) -> look ahead for ; = { :
                name_idx = i - 1
                if name_idx >= 0 and toks[name_idx].kind == "ident" and (
                        toks[name_idx].text.isupper() or
                        toks[name_idx].text.startswith("CODS_")):
                    # Attribute macro (CODS_GUARDED_BY(mutex)): skip the
                    # call, keep the statement — it is a field declaration.
                    i = close + 1
                    continue
                # `>=`: a constructor's name sits AT the statement start.
                if name_idx >= stmt_start and toks[name_idx].kind == "ident" \
                        and toks[name_idx].text not in KEYWORDS:
                    after = close + 1
                    # skip trailing specifiers and init lists
                    k = after
                    while k < end and toks[k].text not in (";", "{", "=") :
                        if toks[k].text == "(":
                            k = self.match.get(k, k) + 1
                            continue
                        k += 1
                    is_def = k < end and toks[k].text == "{"
                    ret = self.type_text(stmt_start, name_idx)
                    mname = toks[name_idx].text
                    if name_idx > stmt_start and \
                            toks[name_idx - 1].text == "~":
                        mname = "~" + mname  # destructor: keep distinct
                        ret = ""
                    if mname != info.name and ret:
                        info.methods.setdefault(
                            mname, Method(mname, ret, toks[name_idx].line))
                    if is_def:
                        fn = FunctionDef(
                            info.qualname + "::" + mname, mname,
                            info.qualname, self.lf.path, toks[name_idx].line,
                            (k, self.match.get(k, k)))
                        self.index.functions.setdefault(
                            fn.qualname, []).append(fn)
                        self.index.functions_by_name.setdefault(
                            mname, []).append(fn)
                        self.parse_params(fn, i, close)
                        self.parse_function_body(fn, k, self.match.get(k, k))
                        i = self.match.get(k, k) + 1
                        stmt_start = i
                        continue
                    i = k + 1
                    stmt_start = i
                    continue
                i = close + 1
                continue
            if t.text == "{":
                # nested class/struct or initializer braces: recurse through
                # the generic walk for nested classes; skip init braces.
                j = i - 1
                nested = False
                while j >= stmt_start:
                    if toks[j].kind == "ident" and toks[j].text in (
                            "class", "struct", "union", "enum"):
                        nested = toks[j].text != "enum"
                        break
                    j -= 1
                close = self.match.get(i, i)
                if nested:
                    name = self.class_header_name(j, i)
                    if name is not None:
                        nested_info = ClassInfo(
                            info.qualname + "::" + name, name, self.lf.path,
                            toks[j].line, bases=self.class_bases(j, i))
                        self.index.classes.setdefault(nested_info.qualname,
                                                      nested_info)
                        self.index.classes_by_name.setdefault(name, [])
                        if nested_info.qualname not in \
                                self.index.classes_by_name[name]:
                            self.index.classes_by_name[name].append(
                                nested_info.qualname)
                        nested_scope = _Scope("class", name, i, close)
                        self.parse_class_body(nested_scope)
                    i = close + 1
                    stmt_start = i
                    continue
                # Member init braces (`Mutex a_{"name"};`): skip the braces
                # but keep stmt_start — the field declarator is before them
                # and parse_field reads the init string at the `;`.
                i = close + 1
                continue
            if t.text == ";":
                self.parse_field(info, stmt_start, i)
                i += 1
                stmt_start = i
                continue
            i += 1

    def parse_field(self, info: ClassInfo, start: int, semi: int) -> None:
        """`TYPE name_ [CODS_GUARDED_BY(...)] [{init} | = init] ;`"""
        toks = self.toks
        # Find the declarator name: last plain identifier before the
        # initializer / attribute part.
        name_idx = None
        init_string = None
        i = start
        depth_angle_end = -1
        while i < semi:
            t = toks[i]
            if t.text == "<":
                nk = self.skip_template_args(i)
                if nk > i:
                    depth_angle_end = nk
                    i = nk
                    continue
            if t.text in ("=", "{"):
                break
            if t.kind == "ident" and t.text not in KEYWORDS:
                if i + 1 < semi and toks[i + 1].text == "(":
                    if t.text.isupper() or t.text.startswith("CODS_"):
                        i = self.match.get(i + 1, i + 1) + 1
                        continue
                    return  # function-style — handled as method elsewhere
                name_idx = i
            i += 1
        if name_idx is None or name_idx == start:
            return
        # Initializer string literal (lock names).
        for j in range(name_idx + 1, semi):
            if toks[j].kind == "str":
                init_string = toks[j].text
                break
        type_end = name_idx
        # attributes between type and name already skipped by type_text
        type_text = self.type_text(start, type_end)
        if not type_text:
            return
        del depth_angle_end
        field = Field(toks[name_idx].text,
                      self.index.canon_type_name(type_text), init_string,
                      toks[name_idx].line)
        info.fields.setdefault(field.name, field)

    # -- function bodies -----------------------------------------------------

    def parse_function_body(self, fn: FunctionDef, open_brace: int,
                            close_brace: int) -> None:
        toks = self.toks
        i = open_brace + 1
        stmt_start = i
        while i < close_brace:
            t = toks[i]
            if t.text == "<" and t.kind == "punct":
                nk = self.skip_template_args(i)
                if nk > i:
                    i = nk
                    continue
            if t.text in (";", "{", "}"):
                if t.text == "{":
                    pass  # statements keep flowing; blocks are transparent
                i += 1
                stmt_start = i
                continue
            if t.kind == "ident" and t.text == "for" and i + 1 < close_brace \
                    and toks[i + 1].text == "(":
                close = self.match.get(i + 1, i + 1)
                colon = self.find_top_level(i + 2, close, ":")
                if colon is not None:
                    seq = toks[colon + 1:close]
                    body_open = close + 1
                    body_close = self.match.get(body_open, body_open) \
                        if body_open < len(toks) and \
                        toks[body_open].text == "{" else close + 1
                    fn.range_fors.append(RangeFor(
                        list(seq), toks[i].line, self.lf.path,
                        (body_open, body_close)))
                    # The loop variable is a local decl for the body:
                    # `for (const Shard& shard : shards_)` lets guard
                    # expressions like `shard.mutex` resolve. Structured
                    # bindings and `auto` stay unresolvable (type unknown).
                    decl_seg = toks[i + 2:colon]
                    if decl_seg and decl_seg[-1].kind == "ident" and \
                            decl_seg[-1].text not in KEYWORDS:
                        ty = self.type_text_of(decl_seg[:-1])
                        if ty and ty != "auto":
                            fn.decls.append(LocalDecl(
                                decl_seg[-1].text,
                                self.index.canon_type_name(ty),
                                colon - 1, decl_seg[-1].line))
                i += 2
                stmt_start = i
                continue
            if t.kind == "ident" and t.text not in KEYWORDS and \
                    i + 1 <= close_brace and toks[i + 1].text == "(":
                self.parse_call(fn, i)
                i += 2
                continue
            i += 1
        self.parse_decls_and_guards(fn, open_brace, close_brace)

    def find_top_level(self, start: int, end: int,
                       text: str) -> Optional[int]:
        depth = 0
        for i in range(start, end):
            tt = self.toks[i].text
            if tt in "([{":
                depth += 1
            elif tt in ")]}":
                depth -= 1
            elif tt == text and depth == 0:
                return i
        return None

    def parse_call(self, fn: FunctionDef, name_idx: int) -> None:
        toks = self.toks
        t = toks[name_idx]
        if t.text.isupper() or t.text.startswith("CODS_"):
            return  # macro invocation
        close = self.match.get(name_idx + 1, name_idx + 1)
        # Written qualification: A::B::name(
        qual_parts: list[str] = []
        j = name_idx - 1
        while j - 1 >= 0 and toks[j].text == "::" and \
                toks[j - 1].kind == "ident":
            qual_parts.insert(0, toks[j - 1].text)
            j -= 2
        qual = "::".join(qual_parts)
        recv: list[lexer.Token] = []
        if not qual_parts and j >= 0 and toks[j].text in (".", "->"):
            # receiver chain: walk back over ident/()/[]/::/. segments.
            k = j
            while k >= 0:
                text = toks[k].text
                if text in (".", "->", "::"):
                    k -= 1
                    continue
                if text in (")", "]"):
                    opener = self.match.get(k)
                    if opener is None:
                        break
                    if opener - 1 >= 0 and \
                            toks[opener - 1].kind == "ident" and \
                            toks[opener - 1].text in CONTROL_KEYWORDS:
                        break  # `if (...) recv->call()`: paren is a condition
                    k = opener - 1
                    continue
                if text == "this" or (toks[k].kind == "ident" and
                                      text not in KEYWORDS):
                    k -= 1
                    continue
                break
            recv = list(toks[k + 1:j])
        fn.calls.append(CallSite(t.text, qual, recv, name_idx, t.line,
                                 self.lf.path, (name_idx + 1, close)))

    def parse_decls_and_guards(self, fn: FunctionDef, open_brace: int,
                               close_brace: int) -> None:
        """Local declarations `TYPE name ...;` — records plain decls, guard
        scopes (MutexLock & friends) and implicit constructor calls for
        indexed class types (e.g. blocking::ScopedBlock block;)."""
        toks = self.toks
        i = open_brace + 1
        stmt_start = i
        while i < close_brace:
            t = toks[i]
            if t.text in (";", "{", "}") and t.kind == "punct":
                i += 1
                stmt_start = i
                continue
            if t.kind == "ident" and t.text not in KEYWORDS and \
                    i == stmt_start:
                decl = self.try_parse_decl(fn, i, close_brace)
                if decl is not None:
                    i = decl
                    stmt_start = i
                    continue
            if t.text == "(" :
                i = self.match.get(i, i) + 1
                continue
            i += 1

    def try_parse_decl(self, fn: FunctionDef, start: int,
                       limit: int) -> Optional[int]:
        """Parse `TYPE name (init)|{init}|= init|;` at statement start.
        Returns the index to resume at, or None when not a declaration."""
        toks = self.toks
        i = start
        # Type: ident(::ident)* [<...>] [*&]*  (skip cv)
        while i < limit and toks[i].kind == "ident" and toks[i].text in (
                "const", "static", "mutable", "constexpr", "auto"):
            if toks[i].text == "auto":
                break
            i += 1
        type_start = i
        if i >= limit or toks[i].kind != "ident" or toks[i].text in KEYWORDS \
                and toks[i].text != "auto":
            return None
        i += 1
        while i + 1 < limit and toks[i].text == "::" and \
                toks[i + 1].kind == "ident":
            i += 2
        if i < limit and toks[i].text == "<":
            nk = self.skip_template_args(i)
            if nk == i:
                return None
            i = nk
        while i < limit and toks[i].text in ("&", "*", "&&", "const"):
            i += 1
        if i >= limit or toks[i].kind != "ident" or toks[i].text in KEYWORDS:
            return None
        name_idx = i
        after = i + 1
        if after >= limit or toks[after].text not in (";", "=", "(", "{", ","):
            return None
        type_text = self.type_text(type_start, name_idx)
        if not type_text or type_text == "return":
            return None
        canonical = self.index.canon_type_name(type_text)
        head = canonical.split("<")[0]
        bare_head = head.rsplit("::", 1)[-1] if not head.startswith("std::") \
            else head
        decl = LocalDecl(toks[name_idx].text, canonical, name_idx,
                         toks[name_idx].line)
        fn.decls.append(decl)
        # Guard?
        guard_kind = GUARD_TYPES.get(head) or GUARD_TYPES.get(bare_head)
        if guard_kind is not None and after < limit and \
                toks[after].text in ("(", "{"):
            close = self.match.get(after, after)
            expr = list(toks[after + 1:close])
            # std::lock_guard<std::mutex> g(mu) — first arg is the mutex;
            # scoped_lock may take several: record one guard per argument.
            args = self.split_args(after + 1, close)
            # enclosing block end:
            end_tok = self.enclosing_block_end(name_idx)
            for arg in args:
                if not arg:
                    continue
                fn.guards.append(GuardScope(
                    bare_head if bare_head in GUARD_TYPES else head,
                    arg, None, name_idx, end_tok, toks[name_idx].line,
                    self.lf.path))
            del expr
        elif self.index.classes_by_name.get(bare_head):
            fn.ctor_decls.append((head, name_idx, toks[name_idx].line))
        # Resume after the statement.
        j = after
        depth = 0
        while j < limit:
            tt = toks[j].text
            if tt in "({[":
                depth += 1
            elif tt in ")}]":
                depth -= 1
            elif tt == ";" and depth <= 0:
                return j + 1
            j += 1
        return j

    def split_args(self, start: int, end: int) -> list[list[lexer.Token]]:
        args: list[list[lexer.Token]] = [[]]
        depth = 0
        for i in range(start, end):
            t = self.toks[i]
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            if t.text == "," and depth == 0:
                args.append([])
            else:
                args[-1].append(t)
        return [a for a in args if a]

    def enclosing_block_end(self, tok_idx: int) -> int:
        """Closing } of the nearest block containing tok_idx."""
        best = len(self.toks) - 1
        for open_idx, close_idx in self.match.items():
            if self.toks[open_idx].text != "{":
                continue
            if open_idx < tok_idx < close_idx < best + 1:
                if close_idx - open_idx < best - open_idx or True:
                    pass
        # simpler: scan back for unmatched '{'
        depth = 0
        i = tok_idx
        while i >= 0:
            tt = self.toks[i].text
            if tt == "}":
                depth += 1
            elif tt == "{":
                if depth == 0:
                    return self.match.get(i, len(self.toks) - 1)
                depth -= 1
            i -= 1
        return len(self.toks) - 1
