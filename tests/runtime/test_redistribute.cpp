// Tests for the "single MPI meta-application" M x N baseline: producers
// and consumers in one communicator exchanging overlap regions directly.
#include <gtest/gtest.h>

#include <atomic>

#include "core/layout.hpp"
#include "geometry/redistribution.hpp"
#include "runtime/redistribute.hpp"

namespace cods {
namespace {

class MetaRedistributeTest : public ::testing::Test {
 protected:
  Cluster cluster_{ClusterSpec{.num_nodes = 4, .cores_per_node = 4}};
  Metrics metrics_;
  Runtime runtime_{cluster_, metrics_};

  std::vector<CoreLoc> block_placement(i32 n) {
    std::vector<CoreLoc> placement;
    for (i32 r = 0; r < n; ++r) placement.push_back(cluster_.core_loc(r));
    return placement;
  }
};

TEST_F(MetaRedistributeTest, MxNContentCorrect) {
  // 8 producers (4x2) -> 4 consumers (2x2) over a 16x16 domain.
  const Decomposition src = blocked({16, 16}, {4, 2});
  const Decomposition dst = blocked({16, 16}, {2, 2});
  std::atomic<u64> bad{0};
  runtime_.run(block_placement(12), [&](RankCtx& ctx) {
    const i32 rank = ctx.world.rank();
    if (rank < 8) {
      // Producer: fill my box with the global pattern and send overlaps.
      const Box mine = src.owned_boxes(rank)[0];
      std::vector<std::byte> data(box_bytes(mine, 8));
      fill_pattern(data, mine, 8, 77);
      const auto stats = meta_redistribute_send(ctx.world, src, rank, dst,
                                                /*consumer_rank0=*/8, data, 8);
      EXPECT_GT(stats.bytes_sent, 0u);
    } else {
      const i32 dst_rank = rank - 8;
      const Box mine = dst.owned_boxes(dst_rank)[0];
      std::vector<std::byte> out(box_bytes(mine, 8));
      const auto stats = meta_redistribute_recv(ctx.world, src,
                                                /*producer_rank0=*/0, dst,
                                                dst_rank, out, 8);
      EXPECT_EQ(stats.bytes_received, box_bytes(mine, 8));
      bad += verify_pattern(out, mine, 8, 77);
    }
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST_F(MetaRedistributeTest, BytesMatchAnalyticVolumes) {
  const Decomposition src = blocked({12, 12}, {3, 2});
  const Decomposition dst = blocked({12, 12}, {2, 3});
  const u64 expected_cells = total_cells(redistribution_volumes(src, dst));
  std::atomic<u64> sent{0};
  std::atomic<u64> received{0};
  runtime_.run(block_placement(12), [&](RankCtx& ctx) {
    const i32 rank = ctx.world.rank();
    if (rank < 6) {
      const Box mine = src.owned_boxes(rank)[0];
      std::vector<std::byte> data(box_bytes(mine, 8));
      sent += meta_redistribute_send(ctx.world, src, rank, dst, 6, data, 8)
                  .bytes_sent;
    } else {
      const Box mine = dst.owned_boxes(rank - 6)[0];
      std::vector<std::byte> out(box_bytes(mine, 8));
      received +=
          meta_redistribute_recv(ctx.world, src, 0, dst, rank - 6, out, 8)
              .bytes_received;
    }
  });
  EXPECT_EQ(sent.load(), expected_cells * 8);
  EXPECT_EQ(received.load(), expected_cells * 8);
}

TEST_F(MetaRedistributeTest, PeerCountsMatchFanOut) {
  // 4 producers -> 2 consumers in 1-D: every consumer hears from exactly 2
  // producers, every producer sends to exactly 1 consumer.
  const Decomposition src = blocked({16}, {4});
  const Decomposition dst = blocked({16}, {2});
  runtime_.run(block_placement(6), [&](RankCtx& ctx) {
    const i32 rank = ctx.world.rank();
    if (rank < 4) {
      const Box mine = src.owned_boxes(rank)[0];
      std::vector<std::byte> data(box_bytes(mine, 8));
      const auto stats =
          meta_redistribute_send(ctx.world, src, rank, dst, 4, data, 8);
      EXPECT_EQ(stats.peers, 1);
    } else {
      const Box mine = dst.owned_boxes(rank - 4)[0];
      std::vector<std::byte> out(box_bytes(mine, 8));
      const auto stats =
          meta_redistribute_recv(ctx.world, src, 0, dst, rank - 4, out, 8);
      EXPECT_EQ(stats.peers, 2);
    }
  });
}

TEST_F(MetaRedistributeTest, NonBlockedRejected) {
  const Decomposition cyc({16}, {4}, Dist::kCyclic);
  const Decomposition blk = blocked({16}, {2});
  runtime_.run(block_placement(1), [&](RankCtx& ctx) {
    std::vector<std::byte> buf(1024);
    EXPECT_THROW(
        meta_redistribute_send(ctx.world, cyc, 0, blk, 0, buf, 8), Error);
    EXPECT_THROW(
        meta_redistribute_recv(ctx.world, blk, 0, cyc, 0, buf, 8), Error);
  });
}

TEST_F(MetaRedistributeTest, UndersizedBuffersRejected) {
  const Decomposition src = blocked({16}, {2});
  runtime_.run(block_placement(1), [&](RankCtx& ctx) {
    std::vector<std::byte> tiny(8);
    EXPECT_THROW(
        meta_redistribute_send(ctx.world, src, 0, src, 0, tiny, 8), Error);
    EXPECT_THROW(
        meta_redistribute_recv(ctx.world, src, 0, src, 0, tiny, 8), Error);
  });
}

}  // namespace
}  // namespace cods
