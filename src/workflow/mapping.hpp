// Task-mapping strategies (paper §III-A, §IV-B):
//
//   round-robin        — the baseline used by standard MPI job launchers:
//                        each application's tasks fill consecutive cores,
//                        so coupled applications land on disjoint node sets
//                        and every coupling byte crosses the network.
//   server data-centric— for a bundle of concurrently coupled applications:
//                        build the inter-application communication graph
//                        (vertices = tasks, edge weight = coupled bytes),
//                        partition it into node-sized groups with the
//                        multilevel partitioner, map groups to nodes.
//   client data-centric— for sequentially coupled applications: each
//                        consumer task is dispatched to the node holding
//                        the largest share of its required data (from the
//                        Data Lookup service or, equivalently, the producer
//                        placement), subject to per-node core capacity.
#pragma once

#include <map>

#include "partition/partitioner.hpp"
#include "platform/cluster.hpp"
#include "workflow/dag.hpp"

namespace cods {

/// Which mapping the workflow engine applies (benchmarks also drive the
/// individual strategy functions directly).
enum class MappingStrategy { kRoundRobin, kDataCentric };

std::string to_string(MappingStrategy strategy);

/// Task -> core assignment for one scheduling wave.
class Placement {
 public:
  void assign(const TaskId& task, const CoreLoc& loc);
  const CoreLoc& loc(const TaskId& task) const;
  bool has(const TaskId& task) const;
  size_t size() const { return assign_.size(); }
  const std::map<TaskId, CoreLoc>& all() const { return assign_; }

  /// Tasks per node (capacity accounting).
  std::map<i32, i32> node_occupancy() const;

  /// True iff no core hosts two tasks and every node is within capacity.
  bool valid(const Cluster& cluster) const;

 private:
  std::map<TaskId, CoreLoc> assign_;
};

/// Baseline: tasks of each app placed on consecutive cores starting at
/// `first_core`, app after app (standard launcher behaviour). A non-empty
/// `allowed_nodes` restricts placement to those nodes' cores, in the given
/// order (used by the engine to route around failed nodes).
Placement round_robin_placement(const Cluster& cluster,
                                const std::vector<AppSpec>& apps,
                                i32 first_core = 0,
                                const std::vector<i32>& allowed_nodes = {});

/// Inter-application communication graph of a bundle: one vertex per task
/// (apps concatenated in the given order), one edge per non-zero coupled
/// data overlap, weighted in bytes.
Graph bundle_comm_graph(const std::vector<AppSpec>& apps);

struct ServerMappingResult {
  Placement placement;
  i64 edge_cut_bytes = 0;  ///< coupled bytes forced across nodes
  i32 nodes_used = 0;
};

/// Server-side data-centric mapping of a bundle of concurrently coupled
/// applications onto `nodes` (defaults to nodes 0..ceil(tasks/cores)-1).
ServerMappingResult server_data_centric_placement(
    const Cluster& cluster, const std::vector<AppSpec>& apps, u64 seed = 1,
    std::vector<i32> nodes = {});

/// Per-consumer-task data histogram: node id -> bytes of the task's
/// required region stored on that node.
using NodeBytes = std::map<i32, u64>;

/// Computes each consumer task's NodeBytes analytically from the producer's
/// decomposition and placement. `storage_at_node_service` selects where
/// sequentially stored data lives: true = the producer task's node (put_seq
/// stores locally); the returned map is keyed by consumer rank.
std::vector<NodeBytes> consumer_node_bytes(const AppSpec& producer,
                                           const Placement& producer_placement,
                                           const AppSpec& consumer);

/// Greedy locality placement: tasks (in order) go to the allowed node with
/// the most local bytes that still has a free core; ties and fallbacks go
/// to the least-loaded allowed node. This is the decentralized client-side
/// strategy — each execution client independently picks the best node for
/// its assigned task.
Placement client_data_centric_placement(
    const Cluster& cluster, const std::vector<AppSpec>& consumers,
    const std::vector<std::vector<NodeBytes>>& per_app_node_bytes,
    const std::vector<i32>& allowed_nodes);

}  // namespace cods
