# Empty dependencies file for cods_core.
# This may be replaced when dependencies are built.
