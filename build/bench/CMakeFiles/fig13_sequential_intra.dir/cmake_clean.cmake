file(REMOVE_RECURSE
  "CMakeFiles/fig13_sequential_intra.dir/fig13_sequential_intra.cpp.o"
  "CMakeFiles/fig13_sequential_intra.dir/fig13_sequential_intra.cpp.o.d"
  "fig13_sequential_intra"
  "fig13_sequential_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sequential_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
