"""C++ tokenizer with source positions.

Produces a flat token stream (identifiers, numbers, punctuation, string
literals) with file/line/column, plus side tables for comments (the
allow/expect markers live there) and preprocessor directives. Comments and
directives are not part of the token stream the parser walks, so a banned
name inside a comment never fires a check.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'num' | 'str' | 'char' | 'punct'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.text!r}@{self.line}"


@dataclasses.dataclass(frozen=True)
class Comment:
    text: str  # without // or /* */ fences
    line: int  # line the comment starts on


PUNCT_3 = {"<<=", ">>=", "...", "->*"}
PUNCT_2 = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
}

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")


class LexedFile:
    def __init__(self, path: str, tokens: list[Token], comments: list[Comment],
                 directives: list[tuple[int, str]]):
        self.path = path
        self.tokens = tokens
        self.comments = comments
        self.directives = directives  # (line, directive text)
        # line -> concatenated comment text on that line (marker lookup)
        self.comment_by_line: dict[int, str] = {}
        for c in comments:
            self.comment_by_line.setdefault(c.line, "")
            self.comment_by_line[c.line] += " " + c.text


def lex(path: str, text: Optional[str] = None) -> LexedFile:
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    tokens: list[Token] = []
    comments: list[Comment] = []
    directives: list[tuple[int, str]] = []
    i, n = 0, len(text)
    line, col = 1, 1
    at_line_start = True

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r":
            advance(1)
            continue
        if ch == "\n":
            advance(1)
            at_line_start = True
            continue
        if ch == "\\" and i + 1 < n and text[i + 1] == "\n":  # line splice
            advance(2)
            continue
        # Preprocessor directive: consume through (spliced) end of line.
        if ch == "#" and at_line_start:
            start, start_line = i, line
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    advance(2)
                    continue
                advance(1)
            directives.append((start_line, text[start:i]))
            continue
        at_line_start = False
        # Comments.
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            start, start_line = i + 2, line
            while i < n and text[i] != "\n":
                advance(1)
            comments.append(Comment(text[start:i].strip(), start_line))
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            start, start_line = i + 2, line
            advance(2)
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                advance(1)
            end = i
            advance(min(2, n - i))
            comments.append(Comment(text[start:end].strip(), start_line))
            continue
        # Raw strings: R"delim( ... )delim".
        if ch == "R" and i + 1 < n and text[i + 1] == '"':
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2:j]
                closer = ")" + delim + '"'
                end = text.find(closer, j + 1)
                if end == -1:
                    end = n - len(closer)
                tok_line, tok_col = line, col
                advance(end + len(closer) - i)
                tokens.append(Token("str", "<raw-string>", tok_line, tok_col))
                continue
        # String / char literals (with common prefixes).
        if ch in "\"'" or (
            ch in "uUL" and i + 1 < n and text[i + 1] in "\"'"
        ) or (text[i:i + 2] == "u8" and i + 2 < n and text[i + 2] in "\"'"):
            tok_line, tok_col = line, col
            while i < n and text[i] not in "\"'":
                advance(1)
            quote = text[i]
            advance(1)
            start = i
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    advance(2)
                else:
                    advance(1)
            literal = text[start:i]
            if i < n:
                advance(1)
            kind = "str" if quote == '"' else "char"
            tokens.append(Token(kind, literal, tok_line, tok_col))
            continue
        # Identifiers / keywords.
        if ch in _ID_START:
            start, tok_line, tok_col = i, line, col
            while i < n and text[i] in _ID_CONT:
                advance(1)
            tokens.append(Token("ident", text[start:i], tok_line, tok_col))
            continue
        # Numbers (incl. hex, digit separators, suffixes, 1.0e-3).
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start, tok_line, tok_col = i, line, col
            while i < n and (text[i].isalnum() or text[i] in "._'"
                             or (text[i] in "+-" and text[i - 1] in "eEpP")):
                advance(1)
            tokens.append(Token("num", text[start:i], tok_line, tok_col))
            continue
        # Punctuation, longest match first.
        tok_line, tok_col = line, col
        for size in (3, 2):
            chunk = text[i:i + size]
            if (size == 3 and chunk in PUNCT_3) or (
                    size == 2 and chunk in PUNCT_2):
                advance(size)
                tokens.append(Token("punct", chunk, tok_line, tok_col))
                break
        else:
            advance(1)
            tokens.append(Token("punct", ch, tok_line, tok_col))
    return LexedFile(path, tokens, comments, directives)
