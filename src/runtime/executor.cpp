#include "runtime/executor.hpp"

#include <algorithm>

namespace cods {

namespace {

/// Lock-free max for the stats peaks.
void raise_max(std::atomic<i32>& maximum, i32 value) {
  i32 current = maximum.load(std::memory_order_relaxed);
  while (current < value &&
         !maximum.compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

i32 WorkStealingExecutor::default_pool_size() {
  // codslint-allow(blocking): hardware_concurrency is a non-blocking query
  return static_cast<i32>(std::max(2u, std::thread::hardware_concurrency()));
}

WorkStealingExecutor::WorkStealingExecutor(i32 pool_size)
    : pool_size_(pool_size > 0 ? pool_size : default_pool_size()) {}

WorkStealingExecutor::~WorkStealingExecutor() {
  // run() joins its own pool; this only covers a run() that threw.
  // codslint-allow(blocking): pool teardown; unreachable under kSimulate
  std::vector<std::thread> leftover;
  {
    MutexLock lock(state_mutex_);
    shutdown_ = true;
    leftover.swap(threads_);
  }
  state_cv_.notify_all();
  // codslint-allow(blocking): joining own pool threads at destruction
  for (std::thread& t : leftover) t.join();
}

void WorkStealingExecutor::run(i32 ntasks,
                               const std::function<void(i32)>& body) {
  CODS_REQUIRE(ntasks >= 1, "need at least one task");
  CODS_REQUIRE(body_ == nullptr, "executor run() is not reentrant");
  ntasks_ = ntasks;
  body_ = &body;
  claimed_.store(0);
  completed_.store(0);
  slots_.clear();
  slots_ = std::vector<Slot>(static_cast<size_t>(pool_size_));
  // Seed the deques round-robin: slot s owns tasks s, s + P, s + 2P, ...
  // Owners pop the front, so each worker walks its tasks in ascending
  // index order and the pool as a whole dispatches ranks near-in-order —
  // the order rank programs that consume lower ranks' messages want.
  for (i32 t = 0; t < ntasks; ++t) {
    Slot& slot = slots_[static_cast<size_t>(t % pool_size_)];
    MutexLock lock(slot.mutex);
    slot.tasks.push_back(t);
  }
  {
    MutexLock lock(state_mutex_);
    shutdown_ = false;
    escaped_ = nullptr;
    const i32 initial = std::min(pool_size_, ntasks);
    next_spawn_slot_ = initial;
    for (i32 s = 0; s < initial; ++s) spawn_locked(s);
  }

  // Wait for every task body to return. The main thread never executes
  // tasks itself, so its own blocking here must not (and cannot) recurse
  // into the observer — no observer is installed on it.
  {
    MutexLock lock(state_mutex_);
    while (completed_.load() < ntasks_) state_cv_.wait(lock);
  }

  // Drain the pool: wake parked spares so they see shutdown, join all.
  // codslint-allow(blocking): the pool-backed exec mode owns these threads
  std::vector<std::thread> pool;
  {
    MutexLock lock(state_mutex_);
    shutdown_ = true;
    pool.swap(threads_);
  }
  state_cv_.notify_all();
  // codslint-allow(blocking): joining own pool after completion signal
  for (std::thread& t : pool) t.join();

  stats_.pool_size = pool_size_;
  stats_.total_spawned = total_spawned_.load();
  stats_.peak_live = peak_live_.load();
  stats_.peak_blocked = peak_blocked_.load();
  stats_.escalations = escalations_.load();
  stats_.spare_reuses = spare_reuses_.load();
  stats_.steals = steals_.load();
  body_ = nullptr;

  std::exception_ptr escaped;
  {
    MutexLock lock(state_mutex_);
    escaped = escaped_;
  }
  if (escaped) std::rethrow_exception(escaped);
}

void WorkStealingExecutor::spawn_locked(i32 slot) {
  runnable_.fetch_add(1);
  const i32 live = live_.fetch_add(1) + 1;
  raise_max(peak_live_, live);
  total_spawned_.fetch_add(1);
  threads_.emplace_back([this, slot] { worker_loop(slot); });
}

i32 WorkStealingExecutor::next_task(i32 slot) {
  {
    Slot& own = slots_[static_cast<size_t>(slot)];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      const i32 task = own.tasks.front();
      own.tasks.pop_front();
      claimed_.fetch_add(1);
      return task;
    }
  }
  for (i32 i = 1; i < pool_size_; ++i) {
    Slot& victim = slots_[static_cast<size_t>((slot + i) % pool_size_)];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      const i32 task = victim.tasks.back();
      victim.tasks.pop_back();
      claimed_.fetch_add(1);
      steals_.fetch_add(1);
      return task;
    }
  }
  return -1;
}

void WorkStealingExecutor::run_task(i32 task) {
  blocking::Observer* previous = blocking::install(this);
  try {
    (*body_)(task);
  } catch (...) {
    // Runtime's rank wrapper contains its own exceptions; anything that
    // still escapes is preserved and rethrown from run().
    MutexLock lock(state_mutex_);
    if (!escaped_) escaped_ = std::current_exception();
  }
  blocking::install(previous);
  if (completed_.fetch_add(1) + 1 == ntasks_) {
    MutexLock lock(state_mutex_);
    state_cv_.notify_all();
  }
}

void WorkStealingExecutor::worker_loop(i32 slot) {
  for (;;) {
    const i32 task = next_task(slot);
    if (task < 0) {
      // claimed_ is bumped inside the deque lock, so a full empty scan
      // proves every task is claimed — each claimed task owns a thread
      // until completion, so this worker is no longer needed.
      if (claimed_.load() >= ntasks_) break;
      std::this_thread::yield();  // transient: a pop is mid-flight
      continue;
    }
    run_task(task);
    // A woken blocker runs as a temporary surplus; trim at the safe
    // point between tasks.
    if (runnable_.load() > pool_size_ && !park_or_retire()) return;
  }
  runnable_.fetch_sub(1);
  live_.fetch_sub(1);
}

bool WorkStealingExecutor::park_or_retire() {
  MutexLock lock(state_mutex_);
  if (runnable_.load() <= pool_size_) return true;  // surplus already gone
  runnable_.fetch_sub(1);
  // Closing the race with a concurrent on_block() that counted this
  // thread as runnable: if the pool just dropped below its cap while
  // unclaimed work remains, take the slot straight back.
  if (claimed_.load() < ntasks_ && runnable_.load() < pool_size_) {
    runnable_.fetch_add(1);
    return true;
  }
  if (shutdown_ || spares_parked_ >= pool_size_) {
    live_.fetch_sub(1);
    return false;
  }
  ++spares_parked_;
  while (!shutdown_ && spare_wakeups_ == 0) state_cv_.wait(lock);
  --spares_parked_;
  if (shutdown_) {
    live_.fetch_sub(1);
    return false;
  }
  --spare_wakeups_;
  return true;  // escalate() already re-granted the execution slot
}

void WorkStealingExecutor::on_block() {
  const i32 blocked = blocked_.fetch_add(1) + 1;
  raise_max(peak_blocked_, blocked);
  const i32 runnable = runnable_.fetch_sub(1) - 1;
  if (claimed_.load() < ntasks_ && runnable < pool_size_) escalate();
}

void WorkStealingExecutor::on_unblock() {
  blocked_.fetch_sub(1);
  runnable_.fetch_add(1);
}

void WorkStealingExecutor::escalate() {
  bool notify = false;
  {
    MutexLock lock(state_mutex_);
    if (shutdown_) return;
    escalations_.fetch_add(1);
    if (spares_parked_ > spare_wakeups_) {
      ++spare_wakeups_;
      runnable_.fetch_add(1);  // granted to the spare being woken
      spare_reuses_.fetch_add(1);
      notify = true;
    } else {
      spawn_locked(next_spawn_slot_++ % pool_size_);
    }
  }
  if (notify) state_cv_.notify_all();
}

}  // namespace cods
