#!/usr/bin/env python3
"""Per-directory line-coverage report over a gcov-instrumented build.

Walks a build tree for .gcda counter files (produced by running the test
suite against a build configured with --coverage), asks gcov for JSON
intermediate records, merges line counts per source file (headers are
seen by many translation units; counts add), and reports line coverage
aggregated per top-level directory under src/.

Thresholds make the report a gate: `--require src/trace=90` fails the
run (exit 1) if src/trace's line coverage is below 90%. Repeatable.

Usage:
  tools/coverage/coverage_report.py --build-dir build-cov [repo_root]
      [--require src/trace=90] [--gcov gcov-12]

Requires only gcov (no gcovr/lcov).
"""

import argparse
import collections
import json
import pathlib
import subprocess
import sys


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (default: .)")
    parser.add_argument("--build-dir", required=True,
                        help="build tree containing .gcda files")
    parser.add_argument("--gcov", default="gcov", help="gcov executable")
    parser.add_argument("--require", action="append", default=[],
                        metavar="DIR=PCT",
                        help="fail if DIR's line coverage is below PCT "
                             "(e.g. src/trace=90); repeatable")
    parser.add_argument("--show-files", action="store_true",
                        help="also print per-file coverage")
    return parser.parse_args()


def run_gcov(gcov: str, gcda: pathlib.Path) -> list[dict]:
    """One gcov invocation -> list of parsed JSON documents."""
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", str(gcda)],
        capture_output=True, text=True, cwd=gcda.parent)
    if proc.returncode != 0:
        print(f"coverage: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return []
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def main() -> int:
    args = parse_args()
    root = pathlib.Path(args.root).resolve()
    build = pathlib.Path(args.build_dir)
    if not build.is_absolute():
        build = (root / build).resolve()
    if not build.is_dir():
        print(f"coverage: build dir {build} does not exist", file=sys.stderr)
        return 2

    gcdas = sorted(build.rglob("*.gcda"))
    if not gcdas:
        print(f"coverage: no .gcda files under {build}; run the test suite "
              "against a --coverage build first", file=sys.stderr)
        return 2

    # line counts per source file: {path: {line: count}}
    lines: dict[str, dict[int, int]] = collections.defaultdict(
        lambda: collections.defaultdict(int))
    for gcda in gcdas:
        for doc in run_gcov(args.gcov, gcda):
            for record in doc.get("files", []):
                path = pathlib.Path(record["file"])
                if not path.is_absolute():
                    # gcov records paths relative to the compilation dir;
                    # resolve against the repo root (the common case for
                    # in-tree sources compiled via CMake).
                    path = (root / path).resolve()
                try:
                    rel = path.resolve().relative_to(root).as_posix()
                except ValueError:
                    continue  # system/third-party header
                if not rel.startswith("src/"):
                    continue
                merged = lines[rel]
                for entry in record.get("lines", []):
                    merged[entry["line_number"]] += entry["count"]

    if not lines:
        print("coverage: no src/ lines found in gcov output", file=sys.stderr)
        return 2

    def top_dir(rel: str) -> str:
        parts = rel.split("/")
        return "/".join(parts[:2]) if len(parts) > 2 else "src"

    per_dir_total: dict[str, int] = collections.defaultdict(int)
    per_dir_covered: dict[str, int] = collections.defaultdict(int)
    per_file = {}
    for rel, counts in sorted(lines.items()):
        total = len(counts)
        covered = sum(1 for c in counts.values() if c > 0)
        per_file[rel] = (covered, total)
        per_dir_total[top_dir(rel)] += total
        per_dir_covered[top_dir(rel)] += covered

    print(f"{'directory':<18} {'lines':>8} {'covered':>8} {'coverage':>9}")
    print("-" * 47)
    grand_total = grand_covered = 0
    pct_by_dir = {}
    for d in sorted(per_dir_total):
        total = per_dir_total[d]
        covered = per_dir_covered[d]
        pct = 100.0 * covered / total if total else 0.0
        pct_by_dir[d] = pct
        grand_total += total
        grand_covered += covered
        print(f"{d:<18} {total:>8} {covered:>8} {pct:>8.1f}%")
    print("-" * 47)
    grand_pct = 100.0 * grand_covered / grand_total if grand_total else 0.0
    print(f"{'total':<18} {grand_total:>8} {grand_covered:>8} "
          f"{grand_pct:>8.1f}%")

    if args.show_files:
        print()
        for rel, (covered, total) in sorted(per_file.items()):
            pct = 100.0 * covered / total if total else 0.0
            print(f"  {rel:<48} {covered:>6}/{total:<6} {pct:>6.1f}%")

    failures = []
    for req in args.require:
        if "=" not in req:
            print(f"coverage: bad --require '{req}' (want DIR=PCT)",
                  file=sys.stderr)
            return 2
        target_dir, _, pct_text = req.partition("=")
        want = float(pct_text)
        have = pct_by_dir.get(target_dir)
        if have is None:
            failures.append(f"{target_dir}: no coverage data")
        elif have < want:
            failures.append(
                f"{target_dir}: {have:.1f}% < required {want:.1f}%")
    if failures:
        for f in failures:
            print(f"coverage FAIL: {f}", file=sys.stderr)
        return 1
    if args.require:
        print("coverage: all thresholds met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
