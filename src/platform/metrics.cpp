#include "platform/metrics.hpp"

#include <sstream>

#include "common/types.hpp"

namespace cods {

void Metrics::record(i32 app_id, TrafficClass cls, u64 bytes,
                     bool via_network) {
  std::scoped_lock lock(mutex_);
  ByteCounters& c = counters_[{app_id, cls}];
  if (via_network) {
    c.net_bytes += bytes;
  } else {
    c.shm_bytes += bytes;
  }
  ++c.transfers;
}

void Metrics::add_time(i32 app_id, const std::string& phase, double seconds) {
  std::scoped_lock lock(mutex_);
  times_[{app_id, phase}] += seconds;
}

void Metrics::add_count(i32 app_id, const std::string& name, u64 n) {
  std::scoped_lock lock(mutex_);
  event_counts_[{app_id, name}] += n;
}

u64 Metrics::count(i32 app_id, const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = event_counts_.find({app_id, name});
  return it == event_counts_.end() ? 0 : it->second;
}

u64 Metrics::total_count(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  u64 total = 0;
  for (const auto& [key, n] : event_counts_) {
    if (key.second == name) total += n;
  }
  return total;
}

ByteCounters Metrics::counters(i32 app_id, TrafficClass cls) const {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find({app_id, cls});
  return it == counters_.end() ? ByteCounters{} : it->second;
}

double Metrics::time(i32 app_id, const std::string& phase) const {
  std::scoped_lock lock(mutex_);
  auto it = times_.find({app_id, phase});
  return it == times_.end() ? 0.0 : it->second;
}

ByteCounters Metrics::total(TrafficClass cls) const {
  std::scoped_lock lock(mutex_);
  ByteCounters total;
  for (const auto& [key, c] : counters_) {
    if (key.second != cls) continue;
    total.shm_bytes += c.shm_bytes;
    total.net_bytes += c.net_bytes;
    total.transfers += c.transfers;
  }
  return total;
}

u64 Metrics::total_net_bytes() const {
  std::scoped_lock lock(mutex_);
  u64 total = 0;
  for (const auto& [key, c] : counters_) total += c.net_bytes;
  return total;
}

void Metrics::reset() {
  std::scoped_lock lock(mutex_);
  counters_.clear();
  times_.clear();
  event_counts_.clear();
}

std::string Metrics::report() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream os;
  auto cls_name = [](TrafficClass cls) {
    switch (cls) {
      case TrafficClass::kInterApp: return "inter-app";
      case TrafficClass::kIntraApp: return "intra-app";
      case TrafficClass::kControl: return "control";
    }
    return "?";
  };
  for (const auto& [key, c] : counters_) {
    os << "app " << key.first << " " << cls_name(key.second)
       << ": shm=" << format_bytes(c.shm_bytes)
       << " net=" << format_bytes(c.net_bytes) << " (" << c.transfers
       << " transfers)\n";
  }
  for (const auto& [key, t] : times_) {
    os << "app " << key.first << " " << key.second << ": "
       << format_seconds(t) << "\n";
  }
  for (const auto& [key, n] : event_counts_) {
    os << "app " << key.first << " " << key.second << ": " << n << "\n";
  }
  return os.str();
}

}  // namespace cods
