"""--self-test: run the analyzer over its bait corpus and verify exactness.

The corpus under tests/static/analyze/ is the analyzer's own test suite:
every `// codslint-expect(check)` marker must produce a finding on that
line, every finding must be either expected or allow-suppressed (no
overreach), every registered check must fire at least once, and clean.cpp
must stay silent. Lock-order cycles carry a file-level marker
`// codslint-expect-file(lock-order)` because a cycle's witness line
depends on the sorted component, not on one bait statement. The self-test
also asserts the interprocedural lock-graph machinery directly: the bait
graph must contain the seeded nested, call-through and inverted edges.

This is what CI runs before trusting a src/ analysis, and what a check
author runs while iterating (docs/STATIC_ANALYSIS.md)."""

from __future__ import annotations

import pathlib
import re
import sys

from . import compdb, frontend, registry
from . import checks  # noqa: F401  -- populates the registry
from .checks import lockorder

EXPECT_FILE_RE = re.compile(r"codslint-expect-file\(([a-z-]+)\)")

# Edges the bait corpus seeds on purpose; their presence proves direct
# nesting, inversion and call-through (interprocedural) extraction work.
REQUIRED_BAIT_EDGES = (
    ("bait.a", "bait.b"),   # direct nesting in ab()
    ("bait.b", "bait.a"),   # the seeded inversion in ba()
    ("bait.a", "bait.c"),   # held across a call into helper()
)


def run(root: pathlib.Path, verbose: bool = False) -> int:
    corpus = root / "tests" / "static" / "analyze"
    if not corpus.is_dir():
        print(f"codslint: self-test corpus missing: {corpus}",
              file=sys.stderr)
        return 2
    commands = compdb.fallback_commands(root, "tests/static/analyze")
    if not commands:
        print(f"codslint: no bait files under {corpus}", file=sys.stderr)
        return 2
    # The corpus is self-contained: no clang augmentation, so the self-test
    # pins the bundled engine's behavior on every machine identically.
    index = frontend.build_index(commands, root, verbose=verbose,
                                 use_clang=False)
    raw: list[registry.Finding] = []
    fired: dict[str, int] = {}
    lock_graph = None
    for check in registry.make_checks():
        fs = check.run(index)
        fired[check.name] = len(fs)
        raw.extend(fs)
        if isinstance(check, lockorder.LockOrderCheck):
            lock_graph = check.graph
    kept, suppressed = registry.apply_allow_markers(raw, index)

    failures: list[str] = []

    # 1. Every line-level expect marker fired (and survived allow markers).
    expected = registry.expected_findings(index)
    kept_keys = {(f.check, f.file, f.line) for f in kept}
    for check_name, path, line in expected:
        if (check_name, path, line) not in kept_keys:
            failures.append(
                f"{_rel(path, root)}:{line}: expected [{check_name}] "
                "finding did not fire")

    # 2. File-level expect markers (lock-order cycles).
    expected_file: set[tuple[str, str]] = set()
    for path, lf in index.files.items():
        for c in lf.comments:
            for m in EXPECT_FILE_RE.finditer(c.text):
                expected_file.add((m.group(1), path))
    kept_file_keys = {(f.check, f.file) for f in kept}
    for check_name, path in expected_file:
        if (check_name, path) not in kept_file_keys:
            failures.append(
                f"{_rel(path, root)}: expected [{check_name}] finding "
                "(file-level) did not fire")

    # 3. No overreach: every kept finding is expected somewhere.
    expected_keys = {(c, p, l) for c, p, l in expected}
    for f in kept:
        if (f.check, f.file, f.line) in expected_keys:
            continue
        if (f.check, f.file) in expected_file:
            continue
        failures.append(
            f"{_rel(f.file, root)}:{f.line}: unexpected [{f.check}] "
            f"finding: {f.message}")

    # 4. Every registered check fired at least once, pre-suppression.
    for name, count in sorted(fired.items()):
        if count == 0:
            failures.append(f"check [{name}] never fired on the corpus — "
                            "its bait is dead")

    # 5. The allow-marker path is exercised (bait_allow.cpp suppresses one).
    if not suppressed:
        failures.append("no finding was allow-suppressed — the "
                        "codslint-allow path is untested")

    # 6. clean.cpp stays silent even pre-suppression.
    for f in raw:
        if f.file.endswith("clean.cpp"):
            failures.append(
                f"clean.cpp:{f.line}: [{f.check}] fired on the clean file: "
                f"{f.message}")

    # 7. Seeded lock-graph edges present (nesting, inversion, call-through).
    edges = set(lock_graph.edges) if lock_graph is not None else set()
    for edge in REQUIRED_BAIT_EDGES:
        if edge not in edges:
            failures.append(
                f"lock graph missing seeded edge {edge[0]} -> {edge[1]} "
                f"(got: {sorted(edges)})")

    n_expected = len(expected) + len(expected_file)
    if failures:
        for msg in failures:
            print(f"codslint self-test: FAIL: {msg}")
        print(f"codslint self-test: {len(failures)} failure(s) over "
              f"{len(index.files)} corpus files")
        return 1
    print(f"codslint self-test: OK — {n_expected} expected findings fired, "
          f"{len(suppressed)} suppressed, {len(lock_graph.edges)} lock "
          f"edges, {len(index.files)} corpus files")
    return 0


def _rel(path: str, root: pathlib.Path) -> str:
    try:
        return str(pathlib.Path(path).relative_to(root))
    except ValueError:
        return path
