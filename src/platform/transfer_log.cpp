#include "platform/transfer_log.hpp"

#include <map>
#include <sstream>

#include "common/types.hpp"

namespace cods {

void TransferLog::record(const TransferRecord& record) {
  MutexLock lock(mutex_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(record);
}

size_t TransferLog::size() const {
  MutexLock lock(mutex_);
  return records_.size();
}

u64 TransferLog::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

std::vector<TransferRecord> TransferLog::snapshot() const {
  MutexLock lock(mutex_);
  return records_;
}

void TransferLog::clear() {
  MutexLock lock(mutex_);
  records_.clear();
  dropped_ = 0;
}

namespace {

const char* cls_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kInterApp: return "inter-app";
    case TrafficClass::kIntraApp: return "intra-app";
    case TrafficClass::kControl: return "control";
  }
  return "?";
}

}  // namespace

std::string TransferLog::summary() const {
  MutexLock lock(mutex_);
  struct Agg {
    u64 count = 0;
    u64 bytes = 0;
  };
  std::map<std::tuple<i32, TrafficClass, bool>, Agg> groups;
  for (const TransferRecord& r : records_) {
    Agg& agg = groups[{r.app_id, r.cls, r.via_network}];
    ++agg.count;
    agg.bytes += r.bytes;
  }
  std::ostringstream os;
  for (const auto& [key, agg] : groups) {
    const auto& [app, cls, net] = key;
    os << "app " << app << " " << cls_name(cls) << " "
       << (net ? "net" : "shm") << ": " << agg.count << " transfers, "
       << format_bytes(agg.bytes) << "\n";
  }
  if (dropped_ > 0) os << "(dropped " << dropped_ << " records)\n";
  return os.str();
}

std::string TransferLog::to_chrome_trace() const {
  MutexLock lock(mutex_);
  // Serialize transfers on a per-destination-node timeline; timestamps are
  // synthetic (each node's transfers are laid end to end) but durations
  // come from the cost model, which is what one inspects in the viewer.
  std::map<i32, double> node_clock;
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TransferRecord& r : records_) {
    const double us = r.model_time * 1e6;
    double& clock = node_clock[r.dst.node];
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << (r.via_network ? "net" : "shm") << " "
       << format_bytes(r.bytes) << "\",\"cat\":\"" << cls_name(r.cls)
       << "\",\"ph\":\"X\",\"ts\":" << clock << ",\"dur\":" << us
       << ",\"pid\":" << r.dst.node << ",\"tid\":" << r.dst.core
       << ",\"args\":{\"app\":" << r.app_id << ",\"src_node\":" << r.src.node
       << ",\"bytes\":" << r.bytes << "}}";
    clock += us;
  }
  os << "]}";
  return os.str();
}

}  // namespace cods
