#include "common/lock_order.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>  // check_sync:allow — the registry's own internal lock
#include <set>
#include <sstream>
#include <vector>

namespace cods::lock_order {

namespace {

#ifdef NDEBUG
constexpr bool kDefaultEnabled = false;
#else
constexpr bool kDefaultEnabled = true;
#endif

std::atomic<bool> g_enabled{kDefaultEnabled};

void default_cycle_handler(const std::string& description) {
  std::fprintf(stderr, "[cods lock-order] %s\n", description.c_str());
  std::abort();
}

std::atomic<CycleHandler> g_handler{&default_cycle_handler};

// The registry's own mutex is a leaf: nothing is called back under it
// (the cycle handler runs after it is released), so it can never take
// part in an application-level cycle.
struct Registry {
  std::mutex mutex;
  std::vector<std::string> names;                 // id -> name
  std::map<LockId, std::set<LockId>> successors;  // edge a -> b: a held
                                                  // when b was acquired
  std::size_t edge_count = 0;
  std::size_t cycles = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

// Locks currently held by this thread, in acquisition order.
thread_local std::vector<LockId> t_held;

/// Depth-first search for a path from `from` to `to` in the successor
/// graph. Fills `path` (from ... to) when found.
bool find_path(const Registry& reg, LockId from, LockId to,
               std::set<LockId>& visited, std::vector<LockId>& path) {
  if (!visited.insert(from).second) return false;
  path.push_back(from);
  if (from == to) return true;
  const auto it = reg.successors.find(from);
  if (it != reg.successors.end()) {
    for (LockId next : it->second) {
      if (find_path(reg, next, to, visited, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

std::string describe_cycle(const Registry& reg, LockId held, LockId acquiring,
                           const std::vector<LockId>& reverse_path,
                           const std::vector<LockId>& stack) {
  std::ostringstream os;
  os << "lock-order cycle: acquiring '" << reg.names[acquiring]
     << "' while holding '" << reg.names[held]
     << "', but the opposite order was already observed: ";
  for (std::size_t i = 0; i < reverse_path.size(); ++i) {
    if (i > 0) os << " -> ";
    os << "'" << reg.names[reverse_path[i]] << "'";
  }
  os << ". This thread's held locks:";
  for (LockId id : stack) os << " '" << reg.names[id] << "'";
  return os.str();
}

}  // namespace

LockId register_lock(const char* name) {
  Registry& reg = registry();
  std::scoped_lock lock(reg.mutex);  // check_sync:allow
  reg.names.emplace_back(name == nullptr ? "unnamed" : name);
  return static_cast<LockId>(reg.names.size() - 1);
}

void on_acquire(LockId id) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  std::string cycle;
  {
    Registry& reg = registry();
    std::scoped_lock lock(reg.mutex);  // check_sync:allow
    for (LockId held : t_held) {
      if (held == id) {
        // Recursive acquisition of a non-recursive lock: a self-deadlock.
        ++reg.cycles;
        cycle = describe_cycle(reg, held, id, {id}, t_held);
        break;
      }
      auto& succ = reg.successors[held];
      if (succ.contains(id)) continue;  // edge already validated
      // New edge held -> id: a pre-existing path id ->* held closes a
      // cycle. Check before inserting so the path excludes the new edge.
      std::set<LockId> visited;
      std::vector<LockId> path;
      if (find_path(reg, id, held, visited, path)) {
        ++reg.cycles;
        cycle = describe_cycle(reg, held, id, path, t_held);
        break;
      }
      succ.insert(id);
      ++reg.edge_count;
    }
  }
  if (!cycle.empty()) {
    // Handler outside the registry lock: it may throw (tests) or abort.
    g_handler.load()(cycle);
    return;  // a non-aborting handler continues; the edge is not recorded
  }
  t_held.push_back(id);
}

void on_try_acquire(LockId id) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  t_held.push_back(id);
}

void on_release(LockId id) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  // Remove the most recent hold; out-of-order release is permitted.
  const auto it = std::find(t_held.rbegin(), t_held.rend(), id);
  if (it != t_held.rend()) t_held.erase(std::next(it).base());
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

CycleHandler set_cycle_handler(CycleHandler handler) {
  return g_handler.exchange(handler == nullptr ? &default_cycle_handler
                                               : handler);
}

std::string dump_hierarchy() {
  Registry& reg = registry();
  std::set<std::pair<std::string, std::string>> lines;
  {
    std::scoped_lock lock(reg.mutex);  // check_sync:allow
    for (const auto& [from, succ] : reg.successors) {
      for (LockId to : succ) {
        lines.insert({reg.names[from], reg.names[to]});
      }
    }
  }
  std::ostringstream os;
  for (const auto& [from, to] : lines) os << from << " -> " << to << "\n";
  return os.str();
}

std::size_t edge_count() {
  Registry& reg = registry();
  std::scoped_lock lock(reg.mutex);  // check_sync:allow
  return reg.edge_count;
}

std::size_t cycles_reported() {
  Registry& reg = registry();
  std::scoped_lock lock(reg.mutex);  // check_sync:allow
  return reg.cycles;
}

void reset_edges_for_testing() {
  Registry& reg = registry();
  std::scoped_lock lock(reg.mutex);  // check_sync:allow
  reg.successors.clear();
  reg.edge_count = 0;
  reg.cycles = 0;
}

}  // namespace cods::lock_order
