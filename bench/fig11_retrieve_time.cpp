// Reproduces Figure 11: time to retrieve the coupled data for the consumer
// applications CAP2, SAP2 and SAP3 under round-robin vs data-centric task
// mapping (blocked/blocked decompositions).
//
// Paper shape: data-centric mapping cuts each consumer's retrieve time
// sharply (most data comes from intra-node shared memory); SAP2/SAP3 take
// longer than CAP2 despite smaller per-task transfers because twice as many
// concurrent retrieve requests hit the space and both consumers pull
// simultaneously.
#include "paper_config.hpp"

using namespace cods;
using namespace cods::bench;

int main() {
  std::printf(
      "Figure 11: coupled-data retrieve time per consumer application\n");
  rule();
  std::printf("%-8s %8s %16s %16s %9s\n", "app", "tasks", "round-robin",
              "data-centric", "speedup");
  rule();

  const auto rr_c =
      run_modeled_scenario(concurrent_scenario(MappingStrategy::kRoundRobin));
  const auto dc_c =
      run_modeled_scenario(concurrent_scenario(MappingStrategy::kDataCentric));
  const auto rr_s =
      run_modeled_scenario(sequential_scenario(MappingStrategy::kRoundRobin));
  const auto dc_s =
      run_modeled_scenario(sequential_scenario(MappingStrategy::kDataCentric));

  struct Row {
    const char* name;
    i32 tasks;
    double rr;
    double dc;
  };
  const std::vector<Row> rows = {
      {"CAP2", 64, rr_c.apps.at(2).retrieve_time,
       dc_c.apps.at(2).retrieve_time},
      {"SAP2", 128, rr_s.apps.at(2).retrieve_time,
       dc_s.apps.at(2).retrieve_time},
      {"SAP3", 384, rr_s.apps.at(3).retrieve_time,
       dc_s.apps.at(3).retrieve_time},
  };
  for (const Row& row : rows) {
    std::printf("%-8s %8d %16s %16s %8.1fx\n", row.name, row.tasks,
                format_seconds(row.rr).c_str(),
                format_seconds(row.dc).c_str(), row.rr / row.dc);
  }
  rule();
  std::printf("paper: large drop under data-centric mapping for every "
              "consumer;\n       SAP2/SAP3 slower than CAP2 despite smaller "
              "per-task data\n");
  return 0;
}
