#include "core/layout.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace cods {

u64 cell_offset(const Box& box, const Point& cell) {
  CODS_REQUIRE(box.contains(cell), "cell outside box");
  u64 offset = 0;
  for (int d = 0; d < box.ndim(); ++d) {
    offset = offset * static_cast<u64>(box.extent(d)) +
             static_cast<u64>(cell[d] - box.lb[d]);
  }
  return offset;
}

void copy_box_region(std::span<const std::byte> src, const Box& src_box,
                     std::span<std::byte> dst, const Box& dst_box,
                     const Box& region, u64 elem_size) {
  CODS_REQUIRE(src_box.contains(region), "region outside source box");
  CODS_REQUIRE(dst_box.contains(region), "region outside destination box");
  CODS_REQUIRE(src.size() >= box_bytes(src_box, elem_size),
               "source buffer too small");
  CODS_REQUIRE(dst.size() >= box_bytes(dst_box, elem_size),
               "destination buffer too small");
  const int nd = region.ndim();
  const u64 row_cells = static_cast<u64>(region.extent(nd - 1));
  const u64 row_bytes = row_cells * elem_size;
  // Iterate all rows: the region minus its last dimension.
  Point cursor = region.lb;
  for (;;) {
    const u64 src_off = cell_offset(src_box, cursor) * elem_size;
    const u64 dst_off = cell_offset(dst_box, cursor) * elem_size;
    std::memcpy(dst.data() + dst_off, src.data() + src_off, row_bytes);
    // Advance the row cursor over dims [0, nd-1).
    int d = nd - 2;
    for (; d >= 0; --d) {
      if (++cursor[d] <= region.ub[d]) break;
      cursor[d] = region.lb[d];
    }
    if (d < 0) break;
  }
}

namespace {

u64 cell_value(const Box& box, const Point& cell, u64 seed) {
  // Value depends only on *global* coordinates, not the buffer's anchor, so
  // any correctly transferred region verifies regardless of how it moved.
  u64 h = seed;
  for (int d = 0; d < box.ndim(); ++d) {
    h ^= static_cast<u64>(cell[d]) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  u64 s = h;
  return splitmix64(s);
}

template <typename Fn>
void for_each_cell(const Box& box, Fn&& fn) {
  Point cursor = box.lb;
  for (;;) {
    fn(cursor);
    int d = box.ndim() - 1;
    for (; d >= 0; --d) {
      if (++cursor[d] <= box.ub[d]) break;
      cursor[d] = box.lb[d];
    }
    if (d < 0) break;
  }
}

}  // namespace

void fill_pattern(std::span<std::byte> buffer, const Box& box, u64 elem_size,
                  u64 seed) {
  CODS_REQUIRE(buffer.size() >= box_bytes(box, elem_size),
               "buffer too small for box");
  for_each_cell(box, [&](const Point& cell) {
    const u64 value = cell_value(box, cell, seed);
    std::byte* p = buffer.data() + cell_offset(box, cell) * elem_size;
    for (u64 b = 0; b < elem_size; ++b) {
      p[b] = static_cast<std::byte>((value >> (8 * (b % 8))) & 0xff);
    }
  });
}

u64 verify_pattern(std::span<const std::byte> buffer, const Box& box,
                   u64 elem_size, u64 seed) {
  CODS_REQUIRE(buffer.size() >= box_bytes(box, elem_size),
               "buffer too small for box");
  u64 mismatches = 0;
  for_each_cell(box, [&](const Point& cell) {
    const u64 value = cell_value(box, cell, seed);
    const std::byte* p = buffer.data() + cell_offset(box, cell) * elem_size;
    for (u64 b = 0; b < elem_size; ++b) {
      if (p[b] != static_cast<std::byte>((value >> (8 * (b % 8))) & 0xff)) {
        ++mismatches;
        return;
      }
    }
  });
  return mismatches;
}

}  // namespace cods
