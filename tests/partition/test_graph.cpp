#include <gtest/gtest.h>

#include "partition/graph.hpp"

namespace cods {
namespace {

TEST(Graph, FromEdgesBuildsSymmetricCsr) {
  const Graph g = Graph::from_edges(4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 1}});
  g.validate();
  EXPECT_EQ(g.nvtx, 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.total_edge_weight(), 9);
}

TEST(Graph, ParallelEdgesMerge) {
  const Graph g = Graph::from_edges(2, {{0, 1, 5}, {1, 0, 3}, {0, 1, 2}});
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.total_edge_weight(), 10);
}

TEST(Graph, SelfLoopsAndZeroWeightsDropped) {
  const Graph g = Graph::from_edges(3, {{0, 0, 5}, {0, 1, 0}, {1, 2, 4}});
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_EQ(g.total_edge_weight(), 4);
}

TEST(Graph, VertexWeightsDefaultToOne) {
  const Graph g = Graph::from_edges(3, {});
  EXPECT_EQ(g.total_vertex_weight(), 3);
}

TEST(Graph, CustomVertexWeights) {
  const Graph g = Graph::from_edges(3, {}, {2, 3, 4});
  EXPECT_EQ(g.total_vertex_weight(), 9);
}

TEST(Graph, EdgeCut) {
  const Graph g =
      Graph::from_edges(4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 7}, {0, 3, 2}});
  const std::vector<i32> same = {0, 0, 0, 0};
  EXPECT_EQ(g.edge_cut(same), 0);
  const std::vector<i32> split = {0, 0, 1, 1};
  EXPECT_EQ(g.edge_cut(split), 5);  // edges (1,2)=3 and (0,3)=2 cross
  const std::vector<i32> alternating = {0, 1, 0, 1};
  EXPECT_EQ(g.edge_cut(alternating), 17);
}

TEST(Graph, FromEdgesRejectsBadInput) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2, 1}}), Error);
  EXPECT_THROW(Graph::from_edges(2, {{-1, 0, 1}}), Error);
  EXPECT_THROW(Graph::from_edges(2, {{0, 1, -5}}), Error);
  EXPECT_THROW(Graph::from_edges(2, {}, {1, 2, 3}), Error);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  g.validate();
  EXPECT_EQ(g.edge_cut(std::vector<i32>{}), 0);
}

}  // namespace
}  // namespace cods
