# Empty compiler generated dependencies file for test_cods.
# This may be replaced when dependencies are built.
