// Ablation (DESIGN.md §4.3): communication-schedule caching. Iterative
// coupled simulations repeat the same coupling pattern every step; caching
// the schedule skips the DHT lookup and schedule computation (paper §IV-A).
// Measured live with google-benchmark on a real CoDS space.
#include <benchmark/benchmark.h>

#include "core/cods.hpp"

namespace {

using namespace cods;

struct LiveSpace {
  LiveSpace()
      : cluster(ClusterSpec{.num_nodes = 8, .cores_per_node = 4}),
        space(cluster, metrics, Box{{0, 0, 0}, {63, 63, 63}}) {}

  Cluster cluster;
  Metrics metrics;
  CodsSpace space;
};

void iterate_get(benchmark::State& state, bool cache_enabled) {
  LiveSpace live;
  const Box domain{{0, 0, 0}, {63, 63, 63}};
  // 8 producers each store one 32^3 octant for many versions.
  const i32 versions = 64;
  for (i32 v = 0; v < versions; ++v) {
    int p = 0;
    for (i64 x = 0; x < 64; x += 32) {
      for (i64 y = 0; y < 64; y += 32) {
        for (i64 z = 0; z < 64; z += 32) {
          const Box box{{x, y, z}, {x + 31, y + 31, z + 31}};
          CodsClient producer(
              live.space,
              Endpoint{p, live.cluster.core_loc(p)}, 1);
          std::vector<std::byte> data(box_bytes(box, 8));
          producer.put_seq("field", v, box, data, 8);
          ++p;
        }
      }
    }
  }
  CodsClient consumer(
      live.space, Endpoint{30, live.cluster.core_loc(30)}, 2);
  consumer.set_schedule_cache_enabled(cache_enabled);
  const Box region{{8, 8, 8}, {55, 55, 55}};  // straddles all 8 octants
  std::vector<std::byte> out(box_bytes(region, 8));
  i32 version = 0;
  i64 dht_lookups = 0;
  for (auto _ : state) {
    const GetResult get =
        consumer.get_seq("field", version, region, out, 8);
    dht_lookups += get.dht_cores;
    version = (version + 1) % versions;
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["dht_cores_per_get"] =
      benchmark::Counter(static_cast<double>(dht_lookups),
                         benchmark::Counter::kAvgIterations);
}

void BM_GetSeq_CacheEnabled(benchmark::State& state) {
  iterate_get(state, true);
}
void BM_GetSeq_CacheDisabled(benchmark::State& state) {
  iterate_get(state, false);
}

BENCHMARK(BM_GetSeq_CacheEnabled)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GetSeq_CacheDisabled)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
