file(REMOVE_RECURSE
  "CMakeFiles/test_dag_property.dir/workflow/test_dag_property.cpp.o"
  "CMakeFiles/test_dag_property.dir/workflow/test_dag_property.cpp.o.d"
  "test_dag_property"
  "test_dag_property.pdb"
  "test_dag_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
